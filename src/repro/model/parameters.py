"""Model input parameters (paper Table 2 plus derived phase costs).

Paper Table 2 gives, per node and base transaction type, six *basic*
parameters in milliseconds: the CPU requirements of the U, TM, DM, LR
and DMIO phases and the disk requirement of one DMIO phase.  The
remaining phase costs (INIT, TC, TCIO, TA, TAIO, UL) were "calculated
[JENQ86]" from these; we derive them from the message protocol (see
DESIGN.md §4.3) with the constants below, shared by the analytical model
and the testbed simulator so the two stay comparable.

Unit convention: **all times are milliseconds** throughout the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.model.types import BaseType, ChainType

__all__ = ["BasicPhaseCosts", "ProtocolCosts", "SiteParameters",
           "paper_table2", "paper_sites"]


@dataclass(frozen=True)
class BasicPhaseCosts:
    """One row of paper Table 2 (milliseconds).

    Attributes
    ----------
    u_cpu:
        CPU per user-application (U) phase visit.
    tm_cpu:
        CPU per TM-processing phase visit (higher for distributed
        types, which pay network send/receive costs).
    dm_cpu:
        CPU per DM-processing phase visit.
    lr_cpu:
        CPU per lock request, including local deadlock detection.
    dmio_cpu:
        CPU per DMIO phase (I/O setup).
    dmio_disk:
        Disk time per DMIO phase; for update types this covers the
        three I/Os per record update (db read + journal write +
        db write), hence it is three times the read value.
    """

    u_cpu: float
    tm_cpu: float
    dm_cpu: float
    lr_cpu: float
    dmio_cpu: float
    dmio_disk: float

    def __post_init__(self) -> None:
        for name in ("u_cpu", "tm_cpu", "dm_cpu", "lr_cpu",
                     "dmio_cpu", "dmio_disk"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class ProtocolCosts:
    """Constants for the phase costs Table 2 does not pin down.

    These model the CARAT message protocol (paper §2): transaction
    initialization (TBEGIN + DBOPEN round trips), the centralized
    two-phase commit (PREPARE/COMMIT rounds with log force-writes) and
    rollback (before-image write-backs).  Defaults were calibrated once
    against the paper's MB8 n=4 model row and then frozen for every
    workload and sweep (DESIGN.md §4.3).
    """

    #: CPU for TBEGIN/TBEGIN_K processing at the coordinator TM.
    tbegin_cpu: float = 10.0
    #: CPU for DBOPEN handling per participating site (TM routing plus
    #: DM server allocation and catalog lookup).
    dbopen_cpu_per_site: float = 14.0
    #: CPU for commit bookkeeping at a site, on top of message costs.
    commit_cpu: float = 6.0
    #: Messages per slave per 2PC round trip (PREPARE+ACK, COMMIT+ACK).
    twopc_rounds: int = 2
    #: Log force-writes at the coordinator when committing an update
    #: transaction (the commit record).
    coordinator_commit_ios: int = 1
    #: Log force-writes at a slave committing an update transaction
    #: (prepare record + commit record).
    slave_commit_ios: int = 2
    #: Log force-writes for read-only commits (CARAT's read-only
    #: optimization writes none).
    readonly_commit_ios: int = 0
    #: CPU to undo one updated granule during rollback.
    undo_cpu_per_granule: float = 2.0
    #: Disk I/Os to undo one updated granule (write the before-image
    #: back; the journal page is assumed buffered).
    undo_ios_per_granule: int = 1
    #: CPU to release one lock in the UL phase.
    unlock_cpu_per_lock: float = 0.4
    #: CPU to process one abort-notification message.
    abort_message_cpu: float = 8.0

    def __post_init__(self) -> None:
        numeric = ("tbegin_cpu", "dbopen_cpu_per_site", "commit_cpu",
                   "undo_cpu_per_granule", "unlock_cpu_per_lock",
                   "abort_message_cpu")
        for name in numeric:
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        counts = ("twopc_rounds", "coordinator_commit_ios",
                  "slave_commit_ios", "readonly_commit_ios",
                  "undo_ios_per_granule")
        for name in counts:
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class SiteParameters:
    """Everything the model needs to know about one site.

    Parameters
    ----------
    name:
        Site identifier (paper: ``"A"`` and ``"B"``).
    granules:
        ``N_g`` — number of database granules (blocks) at the site
        (paper: 3000).
    records_per_granule:
        ``N_b`` — records per granule (paper: 6).
    block_io_ms:
        Time for one disk block transfer (paper: 28 ms on Node A's
        RM05, 40 ms on Node B's RP06).
    costs:
        Basic phase costs per base transaction type (paper Table 2).
    protocol:
        Protocol-derived cost constants shared across types.
    buffer_hit_probability:
        Probability a granule read hits a shared database buffer
        (paper assumption: 0 — every granule access is a disk I/O).
        Exposed for the buffering ablation.
    log_on_separate_disk:
        When True, commit/abort log I/O is served by a second disk
        center instead of competing with database I/O (the paper notes
        the shared disk was a known bottleneck of the testbed).
    """

    name: str
    granules: int = 3000
    records_per_granule: int = 6
    block_io_ms: float = 28.0
    costs: dict[BaseType, BasicPhaseCosts] = field(default_factory=dict)
    protocol: ProtocolCosts = field(default_factory=ProtocolCosts)
    buffer_hit_probability: float = 0.0
    log_on_separate_disk: bool = False

    def __post_init__(self) -> None:
        if self.granules <= 0 or self.records_per_granule <= 0:
            raise ConfigurationError(
                "granules and records_per_granule must be positive"
            )
        if self.block_io_ms <= 0:
            raise ConfigurationError("block_io_ms must be positive")
        if not 0.0 <= self.buffer_hit_probability < 1.0:
            raise ConfigurationError(
                "buffer_hit_probability must be in [0, 1)"
            )
        missing = [b for b in BaseType if b not in self.costs]
        if missing:
            raise ConfigurationError(
                f"site {self.name!r} lacks basic costs for {missing}"
            )

    @property
    def records_total(self) -> int:
        """Total records stored at the site."""
        return self.granules * self.records_per_granule

    def costs_for(self, chain: ChainType) -> BasicPhaseCosts:
        """Basic costs used by a model chain (slaves use the
        distributed row of their base type, as in the paper)."""
        return self.costs[chain.base]

    def effective_read_io_ms(self) -> float:
        """Mean disk time of a granule read after buffer hits."""
        return self.block_io_ms * (1.0 - self.buffer_hit_probability)

    def with_overrides(self, **changes) -> SiteParameters:
        """Copy with selected fields replaced (dataclass ``replace``).

        Note: overriding ``block_io_ms`` alone leaves the Table 2
        ``dmio_disk`` values (which embed the old block time) as they
        are; to change the disk *speed* consistently use
        :meth:`with_block_io`.
        """
        return replace(self, **changes)

    def with_block_io(self, block_io_ms: float) -> SiteParameters:
        """Copy with a different disk speed, rescaling every type's
        ``dmio_disk`` so the I/O *counts* per granule access are
        preserved (1 for reads, 3 for updates)."""
        if block_io_ms <= 0:
            raise ConfigurationError("block_io_ms must be positive")
        scale = block_io_ms / self.block_io_ms
        costs = {base: replace(cost, dmio_disk=cost.dmio_disk * scale)
                 for base, cost in self.costs.items()}
        return replace(self, block_io_ms=block_io_ms, costs=costs)


def paper_table2(node: str) -> dict[BaseType, BasicPhaseCosts]:
    """Basic parameter values of paper Table 2 for node ``"A"``/``"B"``.

    All values in milliseconds, exactly as printed in the paper.
    """
    if node not in ("A", "B"):
        raise ConfigurationError(f"paper nodes are 'A' and 'B', not {node!r}")
    read_io = 28.0 if node == "A" else 40.0
    return {
        BaseType.LRO: BasicPhaseCosts(
            u_cpu=7.8, tm_cpu=8.0, dm_cpu=5.4, lr_cpu=2.2,
            dmio_cpu=1.5, dmio_disk=read_io,
        ),
        BaseType.LU: BasicPhaseCosts(
            u_cpu=7.8, tm_cpu=8.0, dm_cpu=8.6, lr_cpu=2.2,
            dmio_cpu=2.5, dmio_disk=3.0 * read_io,
        ),
        BaseType.DRO: BasicPhaseCosts(
            u_cpu=7.8, tm_cpu=12.0, dm_cpu=5.4, lr_cpu=2.2,
            dmio_cpu=1.5, dmio_disk=read_io,
        ),
        BaseType.DU: BasicPhaseCosts(
            u_cpu=7.8, tm_cpu=12.0, dm_cpu=8.6, lr_cpu=2.2,
            dmio_cpu=2.5, dmio_disk=3.0 * read_io,
        ),
    }


def paper_sites(protocol: ProtocolCosts | None = None,
                ) -> dict[str, SiteParameters]:
    """The paper's two-node configuration: Node A (RM05 disk, 28 ms
    block I/O) and Node B (RP06 disk, 40 ms block I/O), 3000 granules
    of 6 records each per node."""
    protocol = protocol or ProtocolCosts()
    return {
        "A": SiteParameters(
            name="A", granules=3000, records_per_granule=6,
            block_io_ms=28.0, costs=paper_table2("A"), protocol=protocol,
        ),
        "B": SiteParameters(
            name="B", granules=3000, records_per_granule=6,
            block_io_ms=40.0, costs=paper_table2("B"), protocol=protocol,
        ),
    }
