"""The paper's analytical model: phases, demands, locking, remote waits
and the fixed-point solver."""

from repro.model.calibration import (CalibrationResult,
                                     CalibrationTarget,
                                     calibrate_protocol)
from repro.model.demands import (ChainDemands, PhaseCosts,
                                 abort_probability, aggregate_demands,
                                 build_phase_costs, ios_per_request,
                                 lock_count, mean_submissions)
from repro.model.locking import (LockModelState, average_locks_held,
                                 blocker_distribution, blocking_probability,
                                 blocking_ratio,
                                 deadlock_victim_probability,
                                 lock_wait_probability, lock_wait_time,
                                 locks_at_abort)
from repro.model.open_solver import (OpenChainResult, OpenSolution,
                                     OpenWorkload, solve_open_model)
from repro.model.parameters import (BasicPhaseCosts, ProtocolCosts,
                                    SiteParameters, paper_sites,
                                    paper_table2)
from repro.model.phases import (ConflictProbabilities,
                                expected_visits_no_conflict,
                                transition_matrix, visit_counts)
from repro.model.results import ChainResult, ModelSolution, SiteResult
from repro.model.solver import CaratModel, ModelConfig, solve_model
from repro.model.types import BaseType, ChainType, Phase
from repro.model.workload import (STANDARD_WORKLOADS, WorkloadSpec, lb8,
                                  mb4, mb8, ub6)

__all__ = [
    "BaseType", "ChainType", "Phase",
    "WorkloadSpec", "lb8", "mb4", "mb8", "ub6", "STANDARD_WORKLOADS",
    "BasicPhaseCosts", "ProtocolCosts", "SiteParameters",
    "paper_table2", "paper_sites",
    "ConflictProbabilities", "transition_matrix", "visit_counts",
    "expected_visits_no_conflict",
    "PhaseCosts", "ChainDemands", "build_phase_costs", "ios_per_request",
    "lock_count", "abort_probability", "mean_submissions",
    "aggregate_demands",
    "LockModelState", "locks_at_abort", "average_locks_held",
    "blocking_probability", "lock_wait_probability",
    "blocker_distribution", "deadlock_victim_probability",
    "blocking_ratio", "lock_wait_time",
    "ChainResult", "SiteResult", "ModelSolution",
    "CaratModel", "ModelConfig", "solve_model",
    "CalibrationTarget", "CalibrationResult", "calibrate_protocol",
    "OpenWorkload", "OpenChainResult", "OpenSolution",
    "solve_open_model",
]
