"""Reference scalar outer fixed point — the tensor engine's oracle.

:class:`ReferenceCaratModel` preserves the original per-chain Python
outer loop of :class:`~repro.model.solver.CaratModel` exactly as it
was before the solve path moved onto the batched tensor engine
(:mod:`repro.model.outer`).  It mirrors the PR 5
``queueing.mva_reference`` pattern: an unvectorized, obviously-faithful
implementation of the paper's §6 iteration kept solely as the test
oracle the equivalence suite pins the production path against (1e-10
on throughputs, identical iteration counts and snapshots).

All phase methods (demand rebuild, site MVA, lock/abort/remote
updates) are *shared* with ``CaratModel`` — only the driving loop
differs — so the two paths visit the same sequence of iterates up to
array-vs-scalar rounding.
"""

from __future__ import annotations

from repro.errors import ConvergenceError
from repro.model.diagnostics import (ConvergenceTrace, IterationRecord,
                                     TRACKED_FIELDS, trace_clock)
from repro.model.results import ModelSolution
from repro.model.solver import CaratModel
from repro.queueing.network import NetworkSolution

__all__ = ["ReferenceCaratModel"]


class ReferenceCaratModel(CaratModel):
    """``CaratModel`` with the original scalar fixed-point loop."""

    def solve(self) -> ModelSolution:
        """Run the fixed-point iteration to convergence.

        With diagnostics attached the solve runs an instrumented copy
        of the loop (:meth:`_solve_traced`); the phase methods are
        shared, so both paths visit the same fixed point.  Keeping two
        loops means the common (detached) path performs no timing
        calls and allocates nothing per iteration.
        """
        if self._diag is not None:
            return self._solve_traced(self._diag)
        residual = float("inf")
        iterations = 0
        solutions: dict[str, NetworkSolution] = {}
        for iterations in range(1, self.config.max_iterations + 1):
            for key, state in self._state.items():
                self._rebuild_demands(key[0], key[1], state)

            solutions = self._solve_sites()

            residual = self._absorb_solutions(solutions)
            self._update_abort_probabilities()
            for name in self.workload.sites:
                self._update_lock_model(name)
            self._update_remote_waits(solutions)
            if self.config.model_tm_serialization:
                self._update_tm_serialization()

            if residual < self.config.tolerance:
                break
        else:
            if self.config.raise_on_nonconvergence:
                raise ConvergenceError(
                    f"model did not converge for workload "
                    f"{self.workload.name} (n="
                    f"{self.workload.requests_per_txn})",
                    iterations=iterations, residual=residual,
                )
        return self._build_solution(solutions, iterations, residual)

    def _solve_traced(self, diag: ConvergenceTrace) -> ModelSolution:
        """Instrumented twin of :meth:`solve` (same phases, same fixed
        point) that fills *diag* with one record per outer iteration."""
        clock = trace_clock()
        diag.begin_solve(
            self.workload.name, self.workload.requests_per_txn,
            self.config.tolerance, self.config.damping,
            warm_started=bool(self._warm_start),
        )
        residual = float("inf")
        prev_residual: float | None = None
        iterations = 0
        solutions: dict[str, NetworkSolution] = {}
        for iterations in range(1, self.config.max_iterations + 1):
            t0 = clock()
            for key, state in self._state.items():
                self._rebuild_demands(key[0], key[1], state)
            t1 = clock()

            mva_stats = {"solves": 0, "inner": 0, "lattice": 0}
            solutions = self._solve_sites(mva_stats)
            t2 = clock()

            # The damped iterate fields only move during the update
            # phases below, so snapshot them here for the step sizes.
            before = {
                key: tuple(getattr(state, name) for name in TRACKED_FIELDS)
                for key, state in self._state.items()
            }
            chain_residuals: dict[str, float] = {}
            residual = self._absorb_solutions(solutions, chain_residuals)
            t3 = clock()
            self._update_abort_probabilities()
            t4 = clock()
            for name in self.workload.sites:
                self._update_lock_model(name)
            t5 = clock()
            self._update_remote_waits(solutions)
            t6 = clock()
            if self.config.model_tm_serialization:
                self._update_tm_serialization()
            t7 = clock()

            field_residuals = dict.fromkeys(TRACKED_FIELDS, 0.0)
            for key, state in self._state.items():
                prior = before[key]
                for i, name in enumerate(TRACKED_FIELDS):
                    step = abs(getattr(state, name) - prior[i])
                    if step > field_residuals[name]:
                        field_residuals[name] = step
            contraction = (residual / prev_residual
                           if prev_residual else None)
            diag.append(IterationRecord(
                index=iterations,
                residual=residual,
                chain_residuals=chain_residuals,
                field_residuals=field_residuals,
                phase_ms={
                    "demands": (t1 - t0) * 1e3,
                    "mva": (t2 - t1) * 1e3,
                    "absorb": (t3 - t2) * 1e3,
                    "abort": (t4 - t3) * 1e3,
                    "lock": (t5 - t4) * 1e3,
                    "remote": (t6 - t5) * 1e3,
                    "tms": (t7 - t6) * 1e3,
                },
                mva_solves=mva_stats["solves"],
                mva_inner_iterations=mva_stats["inner"],
                mva_lattice_points=mva_stats["lattice"],
                contraction=contraction,
            ))
            prev_residual = residual
            if residual < self.config.tolerance:
                break
        converged = residual < self.config.tolerance
        diag.finish(converged, iterations, residual)
        if not converged and self.config.raise_on_nonconvergence:
            raise ConvergenceError(
                f"model did not converge for workload "
                f"{self.workload.name} (n="
                f"{self.workload.requests_per_txn})",
                iterations=iterations, residual=residual,
            )
        return self._build_solution(solutions, iterations, residual)
