"""Open-arrival variant of the CARAT model.

The paper's model is *closed*: a fixed population of terminals, each
with at most one outstanding transaction.  Modern capacity planning
often starts from the other end — transactions arrive at a rate and
the question is whether the system keeps up.  This module solves the
same site model with open multi-class product-form equations:

* utilization: ``rho_c = sum_t lam_t * D_ct``
* residence at a queueing center: ``R_ct = D_ct / (1 - rho_c)``
* residence at a delay center: ``R_ct = D_ct``

and closes the same lock/remote-wait fixed point, with the mean number
of concurrent transactions per chain given by Little's law
(``N_t = lam_t * R_t``) instead of a fixed population.

The closed solver remains the faithful reproduction; this one answers
"at what arrival rate does the paper's system saturate?"
(see ``examples/capacity_planning.py`` and the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ConvergenceError
from repro.model import demands as demands_mod
from repro.model import locking
from repro.model.parameters import SiteParameters
from repro.model.phases import ConflictProbabilities, transition_matrix, \
    visit_counts
from repro.model.types import BaseType, ChainType
from repro.model.workload import WorkloadSpec

__all__ = ["OpenWorkload", "OpenChainResult", "OpenSolution",
           "solve_open_model"]


@dataclass(frozen=True)
class OpenWorkload:
    """Arrival-driven workload: transactions/second per site and type.

    Transaction *structure* (requests per transaction, records per
    request, remote split) is borrowed from a closed
    :class:`WorkloadSpec` template whose populations are ignored.
    """

    template: WorkloadSpec
    arrivals_per_s: dict[str, dict[BaseType, float]]

    def __post_init__(self) -> None:
        for site, rates in self.arrivals_per_s.items():
            if site not in self.template.sites:
                raise ConfigurationError(f"unknown site {site!r}")
            for base, rate in rates.items():
                if rate < 0:
                    raise ConfigurationError(
                        f"negative arrival rate for {base} at {site}")

    def rate(self, site: str, base: BaseType) -> float:
        """Arrivals/second of *base* transactions at *site*."""
        return self.arrivals_per_s.get(site, {}).get(base, 0.0)

    def chain_rates(self, site: str) -> dict[ChainType, float]:
        """Per-chain arrival rates at *site* (slaves inherit the rate
        of their remote coordinators, split like the populations)."""
        rates = {chain: 0.0 for chain in ChainType}
        rates[ChainType.LRO] = self.rate(site, BaseType.LRO)
        rates[ChainType.LU] = self.rate(site, BaseType.LU)
        rates[ChainType.DROC] = self.rate(site, BaseType.DRO)
        rates[ChainType.DUC] = self.rate(site, BaseType.DU)
        for other in self.template.sites:
            if other == site:
                continue
            share = self.template.remote_request_fraction(other, site)
            rates[ChainType.DROS] += self.rate(other, BaseType.DRO) \
                * (1.0 if share > 0 else 0.0)
            rates[ChainType.DUS] += self.rate(other, BaseType.DU) \
                * (1.0 if share > 0 else 0.0)
        return rates


@dataclass(frozen=True)
class OpenChainResult:
    """Steady-state measures of one chain at one site."""

    chain: ChainType
    arrival_rate_per_s: float
    response_ms: float
    concurrency: float          #: mean transactions in system (Little)
    abort_probability: float
    n_submissions: float


@dataclass(frozen=True)
class OpenSolution:
    """Solution of the open model."""

    sites: dict[str, dict[ChainType, OpenChainResult]]
    cpu_utilization: dict[str, float]
    disk_utilization: dict[str, float]
    iterations: int

    def bottleneck_utilization(self) -> float:
        """Highest center utilization anywhere in the system."""
        values = list(self.cpu_utilization.values()) \
            + list(self.disk_utilization.values())
        return max(values) if values else 0.0


def solve_open_model(
    workload: OpenWorkload,
    sites: dict[str, SiteParameters],
    tolerance: float = 1e-6,
    max_iterations: int = 300,
    damping: float = 0.5,
) -> OpenSolution:
    """Solve the open model by fixed-point iteration.

    Raises
    ------
    ConfigurationError
        If the offered load saturates a CPU or disk (no steady state).
    ConvergenceError
        If the lock fixed point fails to settle.
    """
    template = workload.template
    # Static per-chain structure.
    state: dict[tuple[str, ChainType], dict] = {}
    for site_name in template.sites:
        site = sites[site_name]
        for chain, rate in workload.chain_rates(site_name).items():
            if rate <= 0.0:
                continue
            q = demands_mod.ios_per_request(site, template, chain)
            locks = demands_mod.lock_count(template, chain, q)
            state[(site_name, chain)] = {
                "rate_ms": rate / 1e3, "q": q, "locks": locks,
                "l": template.local_requests(chain),
                "r": template.remote_requests(chain),
                "pb": 0.0, "pd": 0.0, "pa": 0.0, "ns": 1.0,
                "sigma": 0.5, "eY": locking.locks_at_abort(locks, 0.0),
                "lh": 0.0, "blocked_frac": 0.0, "r_lw": 0.0,
                "response": 0.0, "active": 0.0,
            }
    if not state:
        raise ConfigurationError("open workload has no traffic")

    cpu_util: dict[str, float] = {}
    disk_util: dict[str, float] = {}
    iterations = 0
    residual = float("inf")
    for iterations in range(1, max_iterations + 1):
        # Demands from the current conflict iterates.
        for (site_name, chain), s in state.items():
            site = sites[site_name]
            conflict = ConflictProbabilities(
                blocking=min(1.0, s["pb"]),
                deadlock_victim=min(1.0, s["pd"]))
            visits = visit_counts(transition_matrix(
                chain, s["l"], s["r"], s["q"], conflict))
            costs = demands_mod.build_phase_costs(
                site, template, chain, aborted_granules=s["eY"])
            demands = demands_mod.aggregate_demands(
                chain, visits, s["ns"], costs, 0.0)
            s["cpu_ms"] = demands.cpu_ms
            s["disk_ms"] = demands.db_disk_ms + demands.log_disk_ms
            s["lw_visits"] = demands.lw_visits

        # Open-network utilizations and responses per site.
        new_residual = 0.0
        for site_name in template.sites:
            chains_here = [(c, s) for (sn, c), s in state.items()
                           if sn == site_name]
            if not chains_here:
                continue
            rho_cpu = sum(s["rate_ms"] * s["cpu_ms"]
                          for _c, s in chains_here)
            rho_disk = sum(s["rate_ms"] * s["disk_ms"]
                           for _c, s in chains_here)
            if rho_cpu >= 1.0 or rho_disk >= 1.0:
                raise ConfigurationError(
                    f"site {site_name} saturated (cpu {rho_cpu:.2f}, "
                    f"disk {rho_disk:.2f}); reduce arrival rates")
            cpu_util[site_name] = rho_cpu
            disk_util[site_name] = rho_disk
            for chain, s in chains_here:
                active = (s["cpu_ms"] / (1.0 - rho_cpu)
                          + s["disk_ms"] / (1.0 - rho_disk))
                lw = s["lw_visits"] * s["r_lw"]
                response = active + lw
                if s["response"] > 0:
                    new_residual = max(
                        new_residual,
                        abs(response - s["response"]) / s["response"])
                else:
                    new_residual = max(new_residual, 1.0)
                s["response"] = response
                s["active"] = active
                s["blocked_frac"] = lw / response if response > 0 else 0.0

        # Lock model per site (Little's law concurrency).
        for site_name in template.sites:
            site = sites[site_name]
            chains_here = [(c, s) for (sn, c), s in state.items()
                           if sn == site_name]
            if not chains_here:
                continue
            populations = {}
            locks_held = {}
            for chain, s in chains_here:
                concurrency = s["rate_ms"] * s["response"]
                lh_single = locking.average_locks_held(
                    s["locks"], s["pa"], s["sigma"], s["response"],
                    think_time=0.0)
                s["lh"] = ((1 - damping) * s["lh"]
                           + damping * lh_single)
                populations[chain] = concurrency
                locks_held[chain] = s["lh"]
            blocked = {chain: s["blocked_frac"]
                       for chain, s in chains_here}
            locks_of = {chain: s["locks"] for chain, s in chains_here}
            actives = {chain: s["active"] for chain, s in chains_here}
            for chain, s in chains_here:
                pb = locking.blocking_probability(
                    chain, populations, locks_held, site.granules)
                pd = locking.deadlock_victim_probability(
                    chain, populations, locks_held, blocked)
                r_lw = locking.lock_wait_time(
                    chain, populations, locks_held, locks_of, actives)
                s["pb"] = (1 - damping) * s["pb"] + damping * pb
                s["pd"] = (1 - damping) * s["pd"] + damping * pd
                s["r_lw"] = (1 - damping) * s["r_lw"] + damping * r_lw
                pa = demands_mod.abort_probability(
                    chain, s["locks"], s["pb"], s["pd"])
                s["pa"] = (1 - damping) * s["pa"] + damping * pa
                s["ns"] = demands_mod.mean_submissions(
                    min(s["pa"], 0.999))
                s["eY"] = locking.locks_at_abort(
                    s["locks"], s["pb"] * s["pd"])
                s["sigma"] = s["eY"] / s["locks"]

        residual = new_residual
        if residual < tolerance:
            break
    else:
        raise ConvergenceError("open model did not converge",
                               iterations=iterations, residual=residual)

    results: dict[str, dict[ChainType, OpenChainResult]] = {}
    for (site_name, chain), s in state.items():
        results.setdefault(site_name, {})[chain] = OpenChainResult(
            chain=chain,
            arrival_rate_per_s=s["rate_ms"] * 1e3,
            response_ms=s["response"],
            concurrency=s["rate_ms"] * s["response"],
            abort_probability=s["pa"],
            n_submissions=s["ns"],
        )
    return OpenSolution(sites=results, cpu_utilization=cpu_util,
                        disk_utilization=disk_util,
                        iterations=iterations)
