"""Calibration of the protocol-derived phase costs (DESIGN.md §4.3).

Paper Table 2 pins the U/TM/DM/LR/DMIO costs; the INIT/TC/TCIO/TA/UL
costs were "calculated [JENQ86]" from protocol measurements we do not
have.  :func:`calibrate_protocol` fits the three residual CPU constants
(TBEGIN, DBOPEN-per-site, commit bookkeeping) so that the model
reproduces one published operating point, and reports the fit quality.

The shipped :class:`~repro.model.parameters.ProtocolCosts` defaults
came from exactly this procedure against the paper's MB8 n=4 model row
(Table 3) and were then frozen for every workload and sweep — this
module exists so the procedure itself is reproducible and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy import optimize

from repro.errors import ConvergenceError
from repro.model.parameters import ProtocolCosts, paper_sites
from repro.model.solver import solve_model
from repro.model.workload import WorkloadSpec, mb8

__all__ = ["CalibrationTarget", "CalibrationResult",
           "calibrate_protocol", "PAPER_MB8_N4_TARGET"]


@dataclass(frozen=True)
class CalibrationTarget:
    """One published operating point: per-site (XPUT, CPU, DIO)."""

    workload: WorkloadSpec
    per_site: dict[str, tuple[float, float, float]]


#: Paper Table 3, MB8 n=4, model columns.
PAPER_MB8_N4_TARGET = CalibrationTarget(
    workload=mb8(4),
    per_site={"A": (1.11, 0.55, 35.1), "B": (0.79, 0.42, 25.0)},
)


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted costs plus the achieved objective."""

    protocol: ProtocolCosts
    objective: float
    iterations: int
    residuals: dict[str, tuple[float, float, float]]


def _objective_components(protocol: ProtocolCosts,
                          target: CalibrationTarget):
    sites = paper_sites(protocol=protocol)
    solution = solve_model(target.workload, sites, max_iterations=1000,
                           raise_on_nonconvergence=False)
    residuals = {}
    terms = []
    for name, (xput, cpu, dio) in target.per_site.items():
        site = solution.site(name)
        r = (site.transaction_throughput_per_s / xput - 1.0,
             site.cpu_utilization / cpu - 1.0,
             site.dio_rate_per_s / dio - 1.0)
        residuals[name] = r
        terms.extend(r)
    return float(np.sum(np.square(terms))), residuals


def calibrate_protocol(
    target: CalibrationTarget = PAPER_MB8_N4_TARGET,
    initial: ProtocolCosts | None = None,
    max_evaluations: int = 60,
) -> CalibrationResult:
    """Fit (tbegin, dbopen-per-site, commit) CPU costs to *target*.

    Uses derivative-free Nelder–Mead (the model solve is noisy-smooth
    but not differentiable) with non-negativity enforced by clamping.

    Raises
    ------
    ConvergenceError
        When the optimizer cannot improve on a clearly bad fit
        (objective above 1.0, i.e. >100% RMS relative error).
    """
    initial = initial or ProtocolCosts()
    x0 = np.array([initial.tbegin_cpu, initial.dbopen_cpu_per_site,
                   initial.commit_cpu])
    evaluations = 0

    def with_params(x: np.ndarray) -> ProtocolCosts:
        x = np.clip(x, 0.0, 200.0)
        return replace(initial, tbegin_cpu=float(x[0]),
                       dbopen_cpu_per_site=float(x[1]),
                       commit_cpu=float(x[2]))

    def objective(x: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        value, _ = _objective_components(with_params(x), target)
        return value

    result = optimize.minimize(
        objective, x0, method="Nelder-Mead",
        options={"maxfev": max_evaluations, "xatol": 0.5,
                 "fatol": 1e-4})
    best = with_params(result.x)
    value, residuals = _objective_components(best, target)
    if value > 1.0:
        raise ConvergenceError(
            f"calibration failed (objective {value:.3f})",
            iterations=evaluations, residual=value)
    return CalibrationResult(protocol=best, objective=value,
                             iterations=evaluations,
                             residuals=residuals)
