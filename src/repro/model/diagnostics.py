"""Opt-in convergence instrumentation for the fixed-point solver.

The model is solved by damped successive substitution over coupled
sub-models (lock contention, remote waits, 2PC, optionally the TM
serialization surrogate) layered over per-site MVA solves.  The
converged :class:`~repro.model.results.ModelSolution` tells you *what*
the fixed point is; this module tells you *how* the iteration got
there — or why it did not.

Design mirrors the testbed's :class:`~repro.testbed.tracing.Tracer`:
a bounded ring buffer that callers attach explicitly, and hooks that
are no-ops (no allocation, no timing calls) when nothing is attached::

    trace = ConvergenceTrace()
    model = CaratModel(config, diagnostics=trace)
    solution = model.solve()
    print(trace.to_json())          # iteration-by-iteration report
    print(trace.summary())          # converged? who stalled? how fast?

Per outer iteration a :class:`IterationRecord` captures

* the solver's own convergence criterion (max relative throughput
  change) and its per-chain breakdown (so a stalled solve can be
  attributed to one ``site/chain``),
* the max absolute step of every damped iterate field
  (``locks_held``, ``pb``, ``pd``, ``r_lw``, ``pra``, ``abort_prob``,
  ``r_tms``),
* wall time per solver phase (demand rebuild, MVA solves, abort
  update, lock-model update, remote waits, TM serialization),
* MVA work: solve count, inner Schweitzer iterations, exact-lattice
  size, and
* damping effectiveness: the ratio of successive residuals (a
  geometric convergence-rate estimate; ~1.0 means the damped update
  is not contracting).
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "TRACKED_FIELDS",
    "PHASE_NAMES",
    "IterationRecord",
    "ConvergenceTrace",
    "trace_clock",
]


def trace_clock() -> Callable[[], float]:
    """The wall clock used for per-phase trace timings.

    Solver code must not read wall clocks directly (caratlint CL001:
    traced and untraced runs stay bit-identical in their *numerics*,
    so timing is quarantined here in the diagnostics layer).  Returns
    the monotonic high-resolution clock as a callable.
    """
    return time.perf_counter

#: Damped iterate fields whose per-iteration step the trace records.
TRACKED_FIELDS = (
    "locks_held",
    "pb",
    "pd",
    "r_lw",
    "pra",
    "abort_prob",
    "r_tms",
)

#: Solver phases timed per outer iteration (milliseconds of wall time).
PHASE_NAMES = ("demands", "mva", "absorb", "abort", "lock", "remote", "tms")


@dataclass(frozen=True)
class IterationRecord:
    """Everything the solver observed during one outer iteration."""

    #: 1-based outer-iteration index.
    index: int
    #: The solver's convergence criterion: max relative throughput
    #: change across all chains (compared against ``tolerance``).
    residual: float
    #: Per-chain relative throughput change, keyed ``"site/chain"``.
    chain_residuals: dict[str, float]
    #: Max absolute step of each damped iterate field this iteration.
    field_residuals: dict[str, float]
    #: Wall time per solver phase (ms), keyed by :data:`PHASE_NAMES`.
    phase_ms: dict[str, float]
    #: Site networks solved by MVA this iteration.
    mva_solves: int
    #: Total Schweitzer inner iterations (0 when every site was exact).
    mva_inner_iterations: int
    #: Total exact-MVA population-lattice points (0 when approximate).
    mva_lattice_points: int
    #: ``residual / previous residual``; ``None`` on the first
    #: iteration.  Values near (or above) 1.0 mean the damped update is
    #: not contracting.
    contraction: float | None = None

    @property
    def wall_ms(self) -> float:
        """Total wall time of the iteration (ms)."""
        return sum(self.phase_ms.values())

    def worst_chain(self) -> str | None:
        """The ``site/chain`` contributing the largest residual."""
        if not self.chain_residuals:
            return None
        return max(self.chain_residuals, key=lambda k: self.chain_residuals[k])

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form of the record."""
        return {
            "index": self.index,
            "residual": self.residual,
            "chain_residuals": dict(self.chain_residuals),
            "field_residuals": dict(self.field_residuals),
            "phase_ms": dict(self.phase_ms),
            "wall_ms": self.wall_ms,
            "mva_solves": self.mva_solves,
            "mva_inner_iterations": self.mva_inner_iterations,
            "mva_lattice_points": self.mva_lattice_points,
            "contraction": self.contraction,
        }


class ConvergenceTrace:
    """Bounded ring buffer of per-iteration solver records.

    Attach one to :class:`~repro.model.solver.CaratModel` via its
    ``diagnostics`` argument.  The solver populates it during
    :meth:`~repro.model.solver.CaratModel.solve` and stamps the final
    outcome via :meth:`finish`; a detached solver never touches the
    instrumented code paths at all.
    """

    def __init__(self, capacity: int = 2_000):
        if capacity < 1:
            raise ConfigurationError("trace capacity must be >= 1")
        self.capacity = capacity
        self._records: deque[IterationRecord] = deque(maxlen=capacity)
        self.recorded = 0
        self.dropped = 0
        # Solve-level context, stamped by the solver.
        self.workload_name: str | None = None
        self.requests_per_txn: int | None = None
        self.tolerance: float | None = None
        self.damping: float | None = None
        self.converged: bool | None = None
        self.iterations: int | None = None
        self.final_residual: float | None = None
        self.warm_started: bool = False

    # ------------------------------------------------------------------
    # recording (called by the solver)
    # ------------------------------------------------------------------

    def begin_solve(
        self,
        workload_name: str,
        requests_per_txn: int,
        tolerance: float,
        damping: float,
        warm_started: bool = False,
    ) -> None:
        """Reset the trace for a fresh solve and stamp its context."""
        self._records.clear()
        self.recorded = 0
        self.dropped = 0
        self.workload_name = workload_name
        self.requests_per_txn = requests_per_txn
        self.tolerance = tolerance
        self.damping = damping
        self.converged = None
        self.iterations = None
        self.final_residual = None
        self.warm_started = warm_started

    def append(self, record: IterationRecord) -> None:
        """Record one iteration (oldest records fall off when full)."""
        if len(self._records) == self.capacity:
            self.dropped += 1
        self.recorded += 1
        self._records.append(record)

    def finish(self, converged: bool, iterations: int, residual: float) -> None:
        """Stamp the solve outcome."""
        self.converged = converged
        self.iterations = iterations
        self.final_residual = residual

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[IterationRecord]:
        return iter(self._records)

    @property
    def records(self) -> tuple[IterationRecord, ...]:
        """The retained records, oldest first."""
        return tuple(self._records)

    @property
    def last(self) -> IterationRecord | None:
        """The most recent record, if any."""
        return self._records[-1] if self._records else None

    def stalled_chain(self) -> str | None:
        """The ``site/chain`` dominating the final residual."""
        return self.last.worst_chain() if self.last else None

    def contraction_rate(self, tail: int = 10) -> float | None:
        """Geometric-mean residual ratio over the last *tail* records.

        Below 1.0 the damped substitution is contracting (smaller is
        faster); at or above 1.0 it is stalled or diverging.
        """
        ratios = [
            r.contraction
            for r in list(self._records)[-tail:]
            if r.contraction is not None and r.contraction > 0.0
        ]
        if not ratios:
            return None
        product = 1.0
        for ratio in ratios:
            product *= ratio
        return product ** (1.0 / len(ratios))

    def phase_totals(self) -> dict[str, float]:
        """Total wall time per solver phase (ms) over retained records."""
        totals = {name: 0.0 for name in PHASE_NAMES}
        for record in self._records:
            for name, ms in record.phase_ms.items():
                totals[name] = totals.get(name, 0.0) + ms
        return totals

    def diagnosis(self) -> str:
        """One-line explanation of the solve's convergence behaviour."""
        if not self._records:
            return "no iterations recorded"
        if self.converged:
            return (
                f"converged in {self.iterations} iterations "
                f"(final residual {self.final_residual:.3g})"
            )
        rate = self.contraction_rate()
        stalled = self.stalled_chain()
        where = f"; slowest chain: {stalled}" if stalled else ""
        if rate is None:
            return f"did not converge{where}"
        if rate >= 1.0:
            return (
                f"not contracting (residual ratio {rate:.3f} >= 1): the "
                f"damped update oscillates or diverges — lower the "
                f"damping factor{where}"
            )
        # Contracting but out of budget: estimate the shortfall.
        last = self.last
        need = 0
        if self.tolerance and last and last.residual > 0:
            need = math.ceil(math.log(self.tolerance / last.residual) / math.log(rate))
        return (
            f"contracting slowly (residual ratio {rate:.3f}); "
            f"~{max(need, 1)} more iterations needed{where}"
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Solve-level outcome without the per-iteration detail."""
        last = self.last
        return {
            "workload": self.workload_name,
            "requests_per_txn": self.requests_per_txn,
            "converged": self.converged,
            "iterations": self.iterations,
            "final_residual": self.final_residual,
            "tolerance": self.tolerance,
            "damping": self.damping,
            "warm_started": self.warm_started,
            "contraction_rate": self.contraction_rate(),
            "stalled_chain": None if self.converged else self.stalled_chain(),
            "final_field_residuals": dict(last.field_residuals) if last else {},
            "phase_ms_total": self.phase_totals(),
            "mva_inner_iterations_total": sum(
                r.mva_inner_iterations for r in self._records
            ),
            "records_retained": len(self._records),
            "records_dropped": self.dropped,
            "diagnosis": self.diagnosis(),
        }

    def to_dict(self) -> dict[str, Any]:
        """Full JSON-serializable trace (summary + iteration records)."""
        return {
            "summary": self.summary(),
            "iterations": [r.to_dict() for r in self._records],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The full trace as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)
