"""Iterative fixed-point solution of the distributed model (paper §6).

The service demands of the LW, RW and CW delay centers depend on the
model's own performance measures, so the full model is solved by damped
successive substitution (paper §6):

1. from the current conflict estimates, build each chain's phase-
   transition matrix, visit counts and center demands;
2. solve each site's closed multi-chain network with MVA;
3. refresh the lock model (``L_h``, ``Pb``, ``Pd``), the remote-wait
   and 2PC delays and the abort probabilities from the new solution;
4. repeat until chain throughputs stabilize.

As in the paper, the TM serialization delay is ignored (§5.5) and the
communication delay ``alpha`` defaults to zero (§6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.model import demands as demands_mod
from repro.model import locking, remote
from repro.model.diagnostics import ConvergenceTrace
from repro.model.parameters import SiteParameters
from repro.model.phases import ConflictProbabilities, transition_matrix, \
    visit_counts
from repro.model.results import ChainResult, ModelSolution, SiteResult
from repro.model.types import ChainType, Phase
from repro.model.workload import WorkloadSpec
from repro.queueing.centers import CenterKind, ServiceCenter
from repro.queueing.kernels import (NetworkArrays, assemble_solution,
                                    initial_queue, solve_exact_batch,
                                    solve_schweitzer_batch)
from repro.queueing.network import ClosedNetwork, NetworkSolution

__all__ = ["ModelConfig", "CaratModel", "solve_model", "WarmStart"]

#: Exact-MVA lattice budget before switching to Schweitzer.
_EXACT_LATTICE_BUDGET = 300_000

#: Iterate fields carried by a warm-start snapshot.  Everything that is
#: a *solution* of the fixed point (conflict estimates, delay-center
#: times, performance measures) transfers between nearby sweep points;
#: structural quantities (populations, ``q``, lock counts, demands) are
#: always rebuilt from the new workload.
_WARM_FIELDS = (
    "pb", "pd", "pra", "abort_prob", "n_submissions",
    "r_lw", "r_rw", "r_cw", "r_tms",
    "locks_held", "blocked_fraction",
    "response_success_ms", "active_success_ms", "cycle_response_ms",
    "throughput_per_ms",
)

#: A converged-iterate snapshot: ``{(site, chain value): {field: value}}``.
WarmStart = dict[tuple[str, str], dict[str, float]]

#: Pseudo-site tag under which :meth:`CaratModel.snapshot` carries the
#: per-site Schweitzer queue iterates (``{(tag, site): {"center|chain":
#: queue length}}``).  Chain *values* can never equal the tag, so these
#: entries are invisible to the per-chain warm-start lookup.
_MVA_QUEUE_SITE = "__mva_queue__"


@dataclass(frozen=True)
class ModelConfig:
    """Configuration of one model solution run.

    Parameters
    ----------
    workload:
        The workload specification (users, transaction size).
    sites:
        Per-site parameters; must cover every workload site.
    alpha_ms:
        One-way inter-site communication delay (paper: ~0 for the
        two-node Ethernet).
    mva:
        ``"exact"``, ``"approx"`` or ``"auto"`` (exact while the
        population lattice stays small).
    damping:
        Weight of the freshly computed iterate in the damped update.
    tolerance:
        Convergence threshold on the max relative throughput change.
    max_iterations:
        Iteration budget; exceeding it raises
        :class:`~repro.errors.ConvergenceError` unless
        ``raise_on_nonconvergence`` is False.
    blocking_ratio_override:
        When set, replaces the ``(2N+1)/(6N)`` blocking ratio of Eq. 19
        (used by the sensitivity ablation).
    model_tm_serialization:
        The paper *ignores* the TM server's serialization delay (§5.5)
        and attributes its model-over-measurement bias at small n to
        that choice (§6).  When True, we model it with the surrogate-
        delay decomposition the paper cites ([JACO83]): the TM is
        treated as an M/G/1-like token whose per-message waiting time
        — driven by the aggregate TM message rate and the message
        service time (CPU burst plus any synchronous log force) — is
        added as a delay-center demand per TM visit.
    """

    workload: WorkloadSpec
    sites: dict[str, SiteParameters]
    alpha_ms: float = 0.0
    mva: str = "auto"
    damping: float = 0.5
    tolerance: float = 1e-6
    max_iterations: int = 400
    raise_on_nonconvergence: bool = True
    blocking_ratio_override: float | None = None
    model_tm_serialization: bool = False

    def __post_init__(self) -> None:
        missing = [s for s in self.workload.sites if s not in self.sites]
        if missing:
            raise ConfigurationError(f"no parameters for sites {missing}")
        if self.mva not in ("exact", "approx", "auto"):
            raise ConfigurationError(f"unknown mva mode {self.mva!r}")
        if not 0.0 < self.damping <= 1.0:
            raise ConfigurationError("damping must be in (0, 1]")
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}")
        if not self.tolerance > 0.0:
            raise ConfigurationError(
                f"tolerance must be positive, got {self.tolerance}")


@dataclass
class _ChainState:
    """Mutable per-(site, chain) iterate."""

    population: int
    local_requests: int
    remote_requests: int
    q: float
    locks: float
    # Conflict estimates.
    pb: float = 0.0
    pd: float = 0.0
    pra: float = 0.0
    abort_prob: float = 0.0
    n_submissions: float = 1.0
    locks_at_abort: float = 0.0
    sigma: float = 0.5
    locks_held: float = 0.0
    blocked_fraction: float = 0.0
    # Delay-center per-visit times (ms).
    r_lw: float = 0.0
    r_rw: float = 0.0
    r_cw: float = 0.0
    # TM serialization surrogate (optional, §5.5).
    r_tms: float = 0.0
    tm_messages: float = 0.0
    tm_held_ms: float = 0.0
    # Performance iterates (ms / per-ms).
    response_success_ms: float = 0.0
    active_success_ms: float = 0.0
    cycle_response_ms: float = 0.0
    throughput_per_ms: float = 0.0
    # Last-built demands.
    demands: demands_mod.ChainDemands | None = None
    visits: dict[Phase, float] = field(default_factory=dict)
    costs: demands_mod.PhaseCosts | None = None
    lw_demand_ms: float = 0.0
    rw_demand_ms: float = 0.0
    cw_demand_ms: float = 0.0
    ut_demand_ms: float = 0.0


def _built(demands: demands_mod.ChainDemands | None) \
        -> demands_mod.ChainDemands:
    """Narrow a state's ``demands`` after the rebuild phase has run.

    Every read site follows a ``_rebuild_demands`` call, so ``None``
    here is a solver-internal ordering bug, not a user error.
    """
    if demands is None:
        raise ConfigurationError("chain demands read before rebuild")
    return demands


class CaratModel:
    """The distributed CARAT queueing network model.

    ``warm_start`` optionally seeds the fixed-point iterates from the
    converged state of a *nearby* solve (see :meth:`snapshot`) — e.g.
    the previous transaction size of a sweep — which typically cuts the
    iteration count substantially without changing the fixed point the
    damped substitution converges to.

    ``diagnostics`` optionally attaches a
    :class:`~repro.model.diagnostics.ConvergenceTrace` that records a
    per-iteration convergence report during :meth:`solve`.  Detached
    (the default), the iteration hot path is identical to the
    uninstrumented solver: no timing calls, no extra allocation.
    """

    def __init__(self, config: ModelConfig,
                 warm_start: WarmStart | None = None,
                 diagnostics: ConvergenceTrace | None = None):
        self.config = config
        self.workload = config.workload
        self.sites = {name: config.sites[name]
                      for name in self.workload.sites}
        self._state: dict[tuple[str, ChainType], _ChainState] = {}
        self._populations: dict[str, dict[ChainType, int]] = {}
        self._warm_start = warm_start
        self._diag = diagnostics
        # Last Schweitzer queue iterate per site — ``(queueing-center
        # names, chain names, (Cq, K) array)`` — carried across outer
        # iterations (and via snapshots, across solves) as the inner
        # fixed point's warm start.
        self._mva_queues: dict[
            str, tuple[tuple[str, ...], tuple[str, ...], np.ndarray]] = {}
        self._queue_seeds: dict[str, dict[str, float]] = {}
        if warm_start:
            self._queue_seeds = {
                site: dict(values)
                for (tag, site), values in warm_start.items()
                if tag == _MVA_QUEUE_SITE
            }
        self._init_state()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _init_state(self) -> None:
        for site_name, site in self.sites.items():
            pops = self.workload.chain_populations(site_name)
            self._populations[site_name] = pops
            for chain, population in pops.items():
                if population == 0:
                    continue
                q = demands_mod.ios_per_request(site, self.workload, chain)
                local = self.workload.local_requests(chain)
                remote_reqs = self.workload.remote_requests(chain)
                locks = demands_mod.lock_count(self.workload, chain, q)
                state = _ChainState(
                    population=population, local_requests=local,
                    remote_requests=remote_reqs, q=q, locks=locks,
                )
                self._refresh_abort_state(state)
                self._state[(site_name, chain)] = state
        warmed = self._apply_warm_start()
        # Zero-load execution time seeds the lock model for chains the
        # warm-start snapshot did not cover.
        for key, state in self._state.items():
            self._rebuild_demands(key[0], key[1], state)
            if key in warmed:
                continue
            d = _built(state.demands)
            state.response_success_ms = (d.cpu_ms + d.db_disk_ms
                                         + d.log_disk_ms)
            state.active_success_ms = state.response_success_ms
            state.cycle_response_ms = state.response_success_ms

    def _apply_warm_start(self) -> set[tuple[str, ChainType]]:
        """Seed iterates from a snapshot; return the chains seeded."""
        warmed: set[tuple[str, ChainType]] = set()
        if not self._warm_start:
            return warmed
        for key, state in self._state.items():
            seed = self._warm_start.get((key[0], key[1].value))
            if not seed:
                continue
            for name in _WARM_FIELDS:
                if name in seed:
                    setattr(state, name, float(seed[name]))
            # E[Y] and sigma depend on the *new* lock count; derive
            # them from the seeded conflict estimates.
            self._refresh_abort_state(state)
            warmed.add(key)
        return warmed

    def snapshot(self) -> WarmStart:
        """Current iterate values, for warm-starting a nearby solve.

        Besides the per-chain iterate fields, the snapshot carries the
        inner Schweitzer queue iterates of any approximately solved
        sites (under the :data:`_MVA_QUEUE_SITE` pseudo-site tag), so a
        warm-started nearby solve seeds the inner MVA fixed point too,
        not just the outer contention loop.
        """
        snap: WarmStart = {
            (site, chain.value): {name: getattr(state, name)
                                  for name in _WARM_FIELDS}
            for (site, chain), state in self._state.items()
        }
        for site, (qnames, chains, queue) in self._mva_queues.items():
            snap[(_MVA_QUEUE_SITE, site)] = {
                f"{center}|{chain}": float(queue[ci, ki])
                for ci, center in enumerate(qnames)
                for ki, chain in enumerate(chains)
            }
        return snap

    def site_network(self, site_name: str) -> ClosedNetwork:
        """The site's closed network built from the current iterates.

        Right after construction this is the *zero-conflict* network
        (no lock waits, no remote waits, no aborts) — the cheap
        operational-bounds input the capacity planner pre-screens with.
        After :meth:`solve` it reflects the converged iterates, so the
        contention delays appear as delay-center demands and the
        classic product-form bounds apply to the fixed point itself.
        """
        if site_name not in self.sites:
            raise ConfigurationError(
                f"unknown site {site_name!r}; workload sites are "
                f"{list(self.sites)}")
        return self._site_network(site_name)

    def _refresh_abort_state(self, state: _ChainState) -> None:
        """E[Y] and sigma from the current ``Pb * Pd``.

        A chain that acquires no locks is degenerate but valid: it can
        never be a deadlock victim, so both quantities are zero (the
        unguarded ratio ``E[Y] / N_lk`` would divide by zero).
        """
        if state.locks <= 0.0:
            state.locks_at_abort = 0.0
            state.sigma = 0.0
            return
        per_lock = min(1.0, state.pb * state.pd)
        state.locks_at_abort = locking.locks_at_abort(state.locks,
                                                      per_lock)
        state.sigma = state.locks_at_abort / state.locks

    # ------------------------------------------------------------------
    # iteration pieces
    # ------------------------------------------------------------------

    def _rebuild_demands(self, site_name: str, chain: ChainType,
                         state: _ChainState) -> None:
        """Steps 1–2 of the iteration: visits, costs, demands."""
        site = self.sites[site_name]
        conflict = ConflictProbabilities(
            blocking=min(1.0, state.pb),
            deadlock_victim=min(1.0, state.pd),
            remote_abort=min(1.0, state.pra),
        )
        matrix = transition_matrix(
            chain, state.local_requests, state.remote_requests, state.q,
            conflict,
        )
        state.visits = visit_counts(matrix)
        state.costs = demands_mod.build_phase_costs(
            site, self.workload, chain,
            aborted_granules=state.locks_at_abort,
        )
        records = (self.workload.requests_per_txn
                   * self.workload.records_per_request)
        if chain.is_slave:
            records = self.workload.records_per_txn(chain)
        state.demands = demands_mod.aggregate_demands(
            chain, state.visits, state.n_submissions, state.costs,
            records_per_execution=records,
        )
        d = state.demands
        state.lw_demand_ms = d.lw_visits * state.r_lw
        state.rw_demand_ms = d.rw_visits * state.r_rw
        state.cw_demand_ms = d.cw_visits * state.r_cw
        state.ut_demand_ms = (state.n_submissions
                              * self.workload.think_time_ms)
        if self.config.model_tm_serialization:
            ns = state.n_submissions
            v = state.visits
            costs = state.costs
            state.tm_messages = ns * (v[Phase.TM] + v[Phase.TC]
                                      + v[Phase.TA])
            held_cpu = (v[Phase.TM] * costs.cpu.get(Phase.TM, 0.0)
                        + v[Phase.TC] * costs.cpu.get(Phase.TC, 0.0)
                        + v[Phase.TA] * costs.cpu.get(Phase.TA, 0.0))
            held_force = v[Phase.TCIO] * (
                costs.db_disk.get(Phase.TCIO, 0.0)
                + costs.log_disk.get(Phase.TCIO, 0.0))
            state.tm_held_ms = ns * (held_cpu + held_force)

    def _site_network(self, site_name: str) -> ClosedNetwork:
        """Assemble the site's closed network (paper Figure 2)."""
        site = self.sites[site_name]
        chains = {
            chain.value: state.population
            for (s, chain), state in self._state.items() if s == site_name
        }
        cpu: dict[str, float] = {}
        disk: dict[str, float] = {}
        logdisk: dict[str, float] = {}
        lw: dict[str, float] = {}
        rw: dict[str, float] = {}
        cw: dict[str, float] = {}
        ut: dict[str, float] = {}
        for (s, chain), state in self._state.items():
            if s != site_name:
                continue
            d = _built(state.demands)
            cpu[chain.value] = d.cpu_ms
            disk[chain.value] = d.db_disk_ms
            logdisk[chain.value] = d.log_disk_ms
            lw[chain.value] = state.lw_demand_ms
            rw[chain.value] = state.rw_demand_ms
            cw[chain.value] = state.cw_demand_ms
            ut[chain.value] = state.ut_demand_ms
        centers = [
            ServiceCenter("cpu", CenterKind.QUEUEING, cpu),
            ServiceCenter("disk", CenterKind.QUEUEING, disk),
            ServiceCenter("lw", CenterKind.DELAY, lw),
            ServiceCenter("rw", CenterKind.DELAY, rw),
            ServiceCenter("cw", CenterKind.DELAY, cw),
            ServiceCenter("ut", CenterKind.DELAY, ut),
        ]
        if site.log_on_separate_disk:
            centers.insert(2, ServiceCenter("logdisk", CenterKind.QUEUEING,
                                            logdisk))
        if self.config.model_tm_serialization:
            tms = {
                chain.value: state.tm_messages * state.r_tms
                for (s, chain), state in self._state.items()
                if s == site_name
            }
            centers.append(ServiceCenter("tms", CenterKind.DELAY, tms))
        return ClosedNetwork(centers=tuple(centers), populations=chains)

    def _site_arrays(self, site_name: str) -> NetworkArrays:
        """Dense array form of :meth:`_site_network`.

        Same center order and same (sorted) active chains, built
        straight from the iterate state without the intermediate
        :class:`ClosedNetwork` dict structure.
        """
        site = self.sites[site_name]
        items = sorted(
            ((chain.value, state)
             for (s, chain), state in self._state.items()
             if s == site_name),
            key=lambda item: item[0],
        )
        chains = tuple(name for name, _ in items)
        populations = np.array([state.population for _, state in items],
                               dtype=np.int64)
        rows: list[tuple[str, bool, list[float]]] = [
            ("cpu", False,
             [_built(st.demands).cpu_ms for _, st in items]),
            ("disk", False,
             [_built(st.demands).db_disk_ms for _, st in items]),
            ("lw", True, [st.lw_demand_ms for _, st in items]),
            ("rw", True, [st.rw_demand_ms for _, st in items]),
            ("cw", True, [st.cw_demand_ms for _, st in items]),
            ("ut", True, [st.ut_demand_ms for _, st in items]),
        ]
        if site.log_on_separate_disk:
            rows.insert(2, ("logdisk", False,
                            [_built(st.demands).log_disk_ms
                             for _, st in items]))
        if self.config.model_tm_serialization:
            rows.append(("tms", True,
                         [st.tm_messages * st.r_tms for _, st in items]))
        demands = np.array(
            [r[2] for r in rows], dtype=np.float64,
        ).reshape(len(rows), len(chains))
        return NetworkArrays(
            demands=demands,
            delay=np.array([r[1] for r in rows], dtype=bool),
            populations=populations,
            centers=tuple(r[0] for r in rows),
            chains=chains,
        )

    def _solve_sites(self, mva_stats: dict[str, int] | None = None
                     ) -> dict[str, NetworkSolution]:
        """Step 2 of the iteration, batched: solve every site network.

        Sites sharing a center/chain layout (and, for exact MVA, a
        population vector — symmetric sites always do) are stacked and
        solved in one vectorized kernel call instead of one Python-loop
        solve per site.  Schweitzer solves warm-start from the previous
        outer iteration's queue iterate (or a warm-start snapshot's),
        which typically cuts the inner iteration count: the outer loop
        moves the demands only slightly between iterations, so the old
        inner fixed point is a near-solution of the new one.
        """
        arrays = {name: self._site_arrays(name)
                  for name in self.workload.sites}
        if mva_stats is not None:
            mva_stats["solves"] += len(arrays)
        exact_groups: dict[tuple, list[str]] = {}
        approx_groups: dict[tuple, list[str]] = {}
        for name, a in arrays.items():
            mode = self.config.mva
            if mode == "auto":
                mode = ("exact" if a.lattice_size <= _EXACT_LATTICE_BUDGET
                        else "approx")
            if mode == "exact":
                key = (a.centers, a.chains, tuple(a.delay),
                       tuple(a.populations))
                exact_groups.setdefault(key, []).append(name)
            else:
                key = (a.centers, a.chains, tuple(a.delay))
                approx_groups.setdefault(key, []).append(name)

        solutions: dict[str, NetworkSolution] = {}
        for names in exact_groups.values():
            head = arrays[names[0]]
            stack = np.stack([arrays[n].demands for n in names])
            X, R = solve_exact_batch(stack, head.delay, head.populations)
            if mva_stats is not None:
                mva_stats["lattice"] += head.lattice_size * len(names)
            for i, n in enumerate(names):
                solutions[n] = assemble_solution(arrays[n], X[i], R[i])
        for names in approx_groups.values():
            head = arrays[names[0]]
            stack = np.stack([arrays[n].demands for n in names])
            pops = np.stack([arrays[n].populations for n in names])
            result = solve_schweitzer_batch(
                stack, head.delay, pops,
                q0=self._queue_warm_start(names, arrays, stack, head, pops))
            if mva_stats is not None:
                mva_stats["inner"] += int(result.iterations.sum())
            if not result.converged.all():
                bad = int(np.argmax(~result.converged))
                raise ConvergenceError(
                    f"Schweitzer MVA did not converge for site "
                    f"{names[bad]!r}",
                    iterations=int(result.iterations[bad]),
                    residual=float(result.residual[bad]),
                )
            qnames = tuple(c for c, is_delay
                           in zip(head.centers, head.delay) if not is_delay)
            for i, n in enumerate(names):
                solutions[n] = assemble_solution(
                    arrays[n], result.throughput[i], result.residence[i])
                self._mva_queues[n] = (qnames, arrays[n].chains,
                                       result.queue[i])
        return solutions

    def _queue_warm_start(self, names, arrays, stack, head, pops):
        """The ``q0`` stack for one Schweitzer group, or None.

        Prefers this solve's previous outer-iteration queue iterate;
        falls back to a warm-start snapshot's entries; missing sites
        (or entries whose layout changed) keep the kernel's default
        initialization.  Entries are masked to visited (demand > 0)
        center/chain pairs, so a stale seed can never park customers
        at a center the chain no longer uses.
        """
        if not self._mva_queues and not self._queue_seeds:
            return None
        qnames = tuple(c for c, is_delay
                       in zip(head.centers, head.delay) if not is_delay)
        q0 = initial_queue(stack, head.delay, pops)
        for i, name in enumerate(names):
            prev = self._mva_queues.get(name)
            if (prev is not None and prev[0] == qnames
                    and prev[1] == arrays[name].chains):
                q0[i] = prev[2]
                continue
            seed = self._queue_seeds.get(name)
            if not seed:
                continue
            for ci, center in enumerate(qnames):
                for ki, chain in enumerate(arrays[name].chains):
                    value = seed.get(f"{center}|{chain}")
                    if value is not None:
                        q0[i, ci, ki] = value
        q0[stack[:, ~head.delay, :] <= 0.0] = 0.0
        return q0

    def _chain_items(self, site_name: str):
        for (s, chain), state in self._state.items():
            if s == site_name:
                yield chain, state

    def _update_lock_model(self, site_name: str) -> None:
        """Step 3a: refresh L_h, Pb, Pd and R_LW at one site."""
        site = self.sites[site_name]
        damping = self.config.damping
        think = self.workload.think_time_ms

        populations = {chain: state.population
                       for chain, state in self._chain_items(site_name)}
        # First pass: L_h for every chain from the latest responses.
        locks_held: dict[ChainType, float] = {}
        for chain, state in self._chain_items(site_name):
            new_lh = locking.average_locks_held(
                state.locks, state.abort_prob, state.sigma,
                state.response_success_ms, think,
            )
            state.locks_held = ((1 - damping) * state.locks_held
                                + damping * new_lh)
            locks_held[chain] = state.locks_held

        blocked_fraction = {chain: state.blocked_fraction
                            for chain, state in self._chain_items(site_name)}
        locks_per_chain = {chain: state.locks
                           for chain, state in self._chain_items(site_name)}
        # Eq. 18 uses the blocker's remaining *active* execution time
        # (its own lock waits excluded).  Including them makes the
        # R_LW <-> R_s loop gain exceed one in the thrashing regime
        # (n >= 16) and the fixed point ceases to exist; cutting
        # waits-behind-waiters is the same first-order closure as the
        # paper's two-cycle-only deadlock assumption (DESIGN.md §4).
        responses = {chain: state.active_success_ms
                     for chain, state in self._chain_items(site_name)}

        # Skewed access behaves, to first order, like uniform access to
        # a database shrunk by the collision multiplier (b-c rule).
        effective_granules = max(1, int(round(
            site.granules
            / self.workload.collision_multiplier(site.granules))))
        for chain, state in self._chain_items(site_name):
            new_pb = locking.blocking_probability(
                chain, populations, locks_held, effective_granules)
            new_pd = locking.deadlock_victim_probability(
                chain, populations, locks_held, blocked_fraction)
            new_rlw = self._lock_wait_time(
                chain, populations, locks_held, locks_per_chain, responses)
            state.pb = (1 - damping) * state.pb + damping * new_pb
            state.pd = (1 - damping) * state.pd + damping * new_pd
            state.r_lw = (1 - damping) * state.r_lw + damping * new_rlw
            self._refresh_abort_state(state)

    def _lock_wait_time(self, chain, populations, locks_held,
                        locks_per_chain, responses) -> float:
        override = self.config.blocking_ratio_override
        if override is None:
            return locking.lock_wait_time(
                chain, populations, locks_held, locks_per_chain, responses)
        dist = locking.blocker_distribution(chain, populations, locks_held)
        return sum(p * override * responses.get(holder, 0.0)
                   for holder, p in dist.items() if p > 0.0)

    def _update_abort_probabilities(self) -> None:
        """Step 3b: refresh Pra and P_a, coupling sites."""
        damping = self.config.damping
        # Remote-abort hazards seen by coordinators: one per remote
        # request, caused by the slave chain at the target site.
        for (site_name, chain), state in self._state.items():
            if not chain.is_coordinator:
                continue
            slave_type = chain.counterpart
            hazards = []
            for other in self.workload.sites:
                if other == site_name:
                    continue
                slave = self._state.get((other, slave_type))
                if slave is None:
                    continue
                hazards.append(remote.remote_abort_per_request(
                    slave.pb, slave.pd, slave.q))
            new_pra = sum(hazards) / len(hazards) if hazards else 0.0
            state.pra = (1 - damping) * state.pra + damping * new_pra

        # Abort probabilities.
        for (site_name, chain), state in self._state.items():
            if chain.is_slave:
                continue
            new_pa = demands_mod.abort_probability(
                chain, state.locks, state.pb, state.pd,
                remote_abort=state.pra,
                remote_requests=state.remote_requests,
            )
            state.abort_prob = ((1 - damping) * state.abort_prob
                                + damping * new_pa)
            state.n_submissions = demands_mod.mean_submissions(
                min(state.abort_prob, 0.999))

        # Slaves share the whole transaction's fate: their P_a and N_s
        # equal the (averaged) coordinator's, and their per-wait hazard
        # spreads the "aborted elsewhere" probability over their waits.
        for (site_name, chain), state in self._state.items():
            if not chain.is_slave:
                continue
            coord_type = chain.counterpart
            coord_pa: list[float] = []
            elsewhere: list[float] = []
            for other in self.workload.sites:
                if other == site_name:
                    continue
                coord = self._state.get((other, coord_type))
                if coord is None:
                    continue
                coord_pa.append(coord.abort_prob)
                own_survive = ((1.0 - state.pb * state.pd) ** state.locks)
                p_else = 1.0 - (1.0 - coord.abort_prob) / max(
                    own_survive, 1e-12)
                elsewhere.append(min(max(p_else, 0.0), 1.0))
            if not coord_pa:
                continue
            pa = sum(coord_pa) / len(coord_pa)
            state.abort_prob = ((1 - damping) * state.abort_prob
                                + damping * pa)
            state.n_submissions = demands_mod.mean_submissions(
                min(state.abort_prob, 0.999))
            p_else = sum(elsewhere) / len(elsewhere)
            new_pra = remote.remote_abort_per_wait(
                p_else, state.local_requests)
            state.pra = (1 - damping) * state.pra + damping * new_pra

    def _update_tm_serialization(self) -> None:
        """Surrogate-delay estimate of the TM token's queueing (§5.5).

        The TM is a single server fed by every chain's messages; with
        utilization ``rho`` and mean message service ``S`` the M/G/1
        (exponential) waiting time is ``rho S / (1 - rho)``, charged
        once per TM message as a delay-center demand.
        """
        damping = self.config.damping
        for site_name in self.workload.sites:
            chains_here = list(self._chain_items(site_name))
            if not chains_here:
                continue
            lam = sum(state.throughput_per_ms * state.tm_messages
                      for _c, state in chains_here)
            busy = sum(state.throughput_per_ms * state.tm_held_ms
                       for _c, state in chains_here)
            # Clamp the busy time once and derive both the utilization
            # and the mean service from the clamped value: mixing the
            # clamped rho with a service time computed from the raw
            # busy time overstates the wait near saturation.
            rho = min(busy, 0.95)
            if lam <= 0.0 or rho <= 0.0:
                wait = 0.0
            else:
                service = rho / lam
                wait = rho * service / (1.0 - rho)
            for _chain, state in chains_here:
                state.r_tms = ((1 - damping) * state.r_tms
                               + damping * wait)

    def _commit_processing_ms(self, site_name: str,
                              chain: ChainType) -> float:
        """Commit-path service time (TC + TCIO) for the CW model."""
        state = self._state.get((site_name, chain))
        if state is None or state.costs is None:
            return 0.0
        return (state.costs.cpu.get(Phase.TC, 0.0)
                + state.costs.db_disk.get(Phase.TCIO, 0.0)
                + state.costs.log_disk.get(Phase.TCIO, 0.0))

    def _update_remote_waits(
            self, solutions: dict[str, NetworkSolution]) -> None:
        """Step 3c: refresh R_RW and R_CW from the site solutions."""
        damping = self.config.damping
        alpha = self.config.alpha_ms

        for (site_name, chain), state in self._state.items():
            if chain.is_coordinator:
                slave_type = chain.counterpart
                actives = []
                slave_commits = []
                for other in self.workload.sites:
                    if other == site_name:
                        continue
                    slave = self._state.get((other, slave_type))
                    if slave is None:
                        continue
                    sol = solutions[other]
                    active = (slave.cycle_response_ms
                              - sol.chain_residence("rw", slave_type.value)
                              - sol.chain_residence("cw", slave_type.value)
                              - sol.chain_residence("ut", slave_type.value))
                    actives.append(max(0.0, active))
                    slave_commits.append(
                        self._commit_processing_ms(other, slave_type))
                if not actives:
                    continue
                new_rw = remote.coordinator_remote_wait(
                    actives, state.n_submissions, state.remote_requests,
                    alpha)
                new_cw = remote.coordinator_commit_wait(
                    self._commit_processing_ms(site_name, chain),
                    slave_commits, alpha)
                state.r_rw = (1 - damping) * state.r_rw + damping * new_rw
                state.r_cw = (1 - damping) * state.r_cw + damping * new_cw
            elif chain.is_slave:
                coord_type = chain.counterpart
                waits = []
                commit_waits = []
                for other in self.workload.sites:
                    if other == site_name:
                        continue
                    coord = self._state.get((other, coord_type))
                    if coord is None:
                        continue
                    sol = solutions[other]
                    fraction = self.workload.remote_request_fraction(
                        other, site_name)
                    waits.append(remote.slave_remote_wait(
                        coord.cycle_response_ms,
                        sol.chain_residence("rw", coord_type.value),
                        sol.chain_residence("ut", coord_type.value),
                        fraction, state.n_submissions,
                        state.local_requests,
                    ))
                    commit_waits.append(remote.slave_commit_wait(
                        self._commit_processing_ms(other, coord_type),
                        alpha))
                if not waits:
                    continue
                new_rw = sum(waits) / len(waits)
                new_cw = sum(commit_waits) / len(commit_waits)
                state.r_rw = (1 - damping) * state.r_rw + damping * new_rw
                state.r_cw = (1 - damping) * state.r_cw + damping * new_cw

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def solve(self) -> ModelSolution:
        """Run the fixed-point iteration to convergence.

        The iteration runs on the tensorized outer engine
        (:mod:`repro.model.outer`) as a batch of one: every phase —
        demand rebuild, batched site MVA, lock/abort/remote updates —
        is an array operation over the ``(site, chain)`` states, and a
        solve sharing an engine with other grid points converges to
        bit-identical iterates (the engine's operations are
        row-independent).  :class:`~repro.model.solver_reference.\
ReferenceCaratModel` keeps the original scalar loop as the oracle
        the equivalence tests pin this path against.
        """
        from repro.model.outer import solve_outer_batch

        return solve_outer_batch([self])[0]

    def _absorb_solutions(
            self, solutions: dict[str, NetworkSolution],
            per_chain: dict[str, float] | None = None) -> float:
        """Record per-chain measures; return max relative X change.

        When *per_chain* is given (traced solves only), it is filled
        with each chain's relative throughput change keyed
        ``"site/chain"``, so a stalled solve can be attributed.
        """
        residual = 0.0
        for (site_name, chain), state in self._state.items():
            sol = solutions[site_name]
            x = sol.throughput[chain.value]
            if state.throughput_per_ms > 0:
                change = (abs(x - state.throughput_per_ms)
                          / state.throughput_per_ms)
            elif x > 0:
                change = 1.0
            else:
                change = 0.0
            if change > residual:
                residual = change
            if per_chain is not None:
                per_chain[f"{site_name}/{chain.value}"] = change
            state.throughput_per_ms = x
            state.cycle_response_ms = sol.response_time[chain.value]
            in_execution = (state.cycle_response_ms
                            - sol.chain_residence("ut", chain.value))
            lw_res = sol.chain_residence("lw", chain.value)
            executions = 1.0 + (state.n_submissions - 1.0) * state.sigma
            state.response_success_ms = max(1e-9, in_execution / executions)
            state.active_success_ms = max(
                1e-9, (in_execution - lw_res) / executions)
            state.blocked_fraction = (lw_res / in_execution
                                      if in_execution > 0 else 0.0)
        return residual

    def _build_solution(self, solutions: dict[str, NetworkSolution],
                        iterations: int, residual: float) -> ModelSolution:
        sites: dict[str, SiteResult] = {}
        for name in self.workload.sites:
            sol = solutions[name]
            network = self._site_network(name)
            center_names = [c.name for c in network.centers]
            chains: dict[ChainType, ChainResult] = {}
            for chain, state in self._chain_items(name):
                d = _built(state.demands)
                residence = {
                    center: sol.chain_residence(center, chain.value)
                    for center in center_names
                }
                lock_state = locking.LockModelState(
                    chain=chain, locks=state.locks, blocking=state.pb,
                    deadlock_victim=state.pd,
                    lock_wait_probability=locking.lock_wait_probability(
                        state.pb, state.locks),
                    locks_held=state.locks_held,
                    locks_at_abort=state.locks_at_abort,
                    abort_probability=state.abort_prob,
                    lock_wait_ms=state.r_lw,
                )
                chains[chain] = ChainResult(
                    chain=chain, site=name, population=state.population,
                    throughput_per_s=state.throughput_per_ms * 1e3,
                    cycle_response_ms=state.cycle_response_ms,
                    n_submissions=state.n_submissions,
                    abort_probability=state.abort_prob,
                    lock_state=lock_state,
                    cpu_demand_ms=d.cpu_ms,
                    disk_demand_ms=d.db_disk_ms,
                    log_disk_demand_ms=d.log_disk_ms,
                    ios_per_cycle=d.total_ios,
                    lock_wait_ms=state.r_lw,
                    remote_wait_ms=state.r_rw,
                    commit_wait_ms=state.r_cw,
                    records_per_txn=d.records_per_cycle,
                    residence_ms=residence,
                )
            sites[name] = SiteResult(
                site=name,
                chains=chains,
                cpu_utilization=sol.center_utilization("cpu"),
                disk_utilization=sol.center_utilization("disk"),
                log_disk_utilization=(
                    sol.center_utilization("logdisk")
                    if "logdisk" in center_names else 0.0),
            )
        return ModelSolution(
            workload_name=self.workload.name,
            requests_per_txn=self.workload.requests_per_txn,
            sites=sites,
            iterations=iterations,
            residual=residual,
            converged=residual < self.config.tolerance,
            trace=self._diag,
        )


def solve_model(workload: WorkloadSpec, sites: dict[str, SiteParameters],
                warm_start: WarmStart | None = None,
                diagnostics: ConvergenceTrace | None = None,
                **kwargs) -> ModelSolution:
    """Convenience one-call API: configure and solve the model."""
    return CaratModel(ModelConfig(workload=workload, sites=sites,
                                  **kwargs),
                      warm_start=warm_start,
                      diagnostics=diagnostics).solve()
