"""Rendering of capacity-plan results (text tables and JSON)."""

from __future__ import annotations

import json
import math

from repro.planner.spec import PlanResult

__all__ = ["render_plan_text", "render_plan_json",
           "render_workload_bounds"]


def _fmt(value: float | None, pattern: str = "{:.3f}",
         missing: str = "-") -> str:
    if value is None:
        return missing
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return pattern.format(value)


def _optimum_lines(result: PlanResult) -> list[str]:
    optimum = result.optimum
    point = optimum.point
    lines = [
        f"Capacity plan: {result.workload} "
        f"(n={result.requests_per_txn}, MPL grid step "
        f"{result.quantum}/site)",
        "",
        f"  optimal MPL    : {point.mpl} users/site  "
        f"(X={point.throughput_per_s:.3f} txn/s, "
        f"R={point.response_ms / 1e3:.2f} s, "
        f"Pa={point.abort_probability:.3f})",
        f"  thrashing knee : "
        + (f"{optimum.knee_mpl} users/site"
           if optimum.knee_mpl is not None
           else f"not reached on grid (max {optimum.grid[-1]})"),
    ]
    if not point.converged:
        lines.append("  WARNING        : optimum solve did not fully "
                     "converge; treat numbers as approximate")
    for window in optimum.windows:
        lines.append(
            f"  site {window.site} window: saturation between "
            f"{_fmt(window.lower, '{:.1f}')} and "
            f"{_fmt(window.upper, '{:.1f}')} customers "
            f"(holds {window.population}; binding bound: "
            f"{window.binding})")
    lines.append(
        f"  search cost    : {optimum.solves} solves over "
        f"{optimum.evaluations} MPLs "
        f"({len(optimum.grid)} grid points, "
        f"{optimum.cache_hits} cache hits, "
        f"{optimum.total_iterations} fixed-point iterations)")
    requests = optimum.cache_hits + optimum.cache_misses
    if requests:
        lines.append(
            f"  result cache   : {optimum.cache_hits} hits / "
            f"{optimum.cache_misses} misses "
            f"(hit rate {optimum.cache_hits / requests:.2f})")
    return lines


def _slo_lines(result: PlanResult) -> list[str]:
    if not result.slo:
        return []
    lines = ["", "SLO verdicts:"]
    for verdict in result.slo:
        if verdict.kind == "response_ms":
            target = f"R <= {verdict.target / 1e3:g} s"
            at_max = _fmt(None if verdict.value_at_max is None
                          else verdict.value_at_max / 1e3, "{:.2f} s")
        else:
            target = f"Pa <= {verdict.target:g}"
            at_max = _fmt(verdict.value_at_max)
        status = ("met at optimum" if verdict.met_at_optimum
                  else "NOT met at optimum")
        reach = (f"max MPL {verdict.max_mpl}/site "
                 f"(value {at_max})"
                 if verdict.max_mpl is not None
                 else "infeasible at every searched MPL")
        lines.append(f"  {target:<16} {status}; {reach}")
        if verdict.max_arrival_per_s is not None:
            lines.append(
                f"  {'':<16} open-model capacity "
                f"{verdict.max_arrival_per_s:.3f} arrivals/s total")
    return lines


def _bottleneck_lines(result: PlanResult) -> list[str]:
    if not result.bottlenecks:
        return []
    lines = ["", "Bottlenecks at the optimum "
             "(share of user cycle; utilization where physical):",
             f"  {'site':<6}{'center':<10}{'share':>8}{'util':>8}"]
    for entry in result.bottlenecks:
        lines.append(
            f"  {entry.site:<6}{entry.center:<10}"
            f"{entry.residence_share:>8.1%}"
            f"{_fmt(entry.utilization, '{:.1%}'):>8}")
    return lines


def _whatif_lines(result: PlanResult) -> list[str]:
    if not result.whatif:
        return []
    lines = ["", "What-if at the optimal MPL:",
             f"  {'change':<24}{'X (txn/s)':>10}{'speedup':>9}"
             f"{'R (s)':>8}  bottleneck"]
    for outcome in result.whatif:
        lines.append(
            f"  {outcome.candidate.label:<24}"
            f"{outcome.throughput_per_s:>10.3f}"
            f"{outcome.speedup:>8.2f}x"
            f"{outcome.response_ms / 1e3:>8.2f}  "
            f"{outcome.bottleneck}")
    return lines


def render_workload_bounds(requests: int = 8) -> str:
    """Operational-bounds table of the standard workload catalog.

    For each workload and site: the balanced-job throughput upper
    bound of the aggregated zero-conflict site network (completions/s
    over all site customers, slave chains included) and its asymptotic
    saturation population — the planner's no-solve pre-screen, shown
    by ``repro list``.
    """
    from repro.model.parameters import paper_sites
    from repro.model.solver import CaratModel, ModelConfig
    from repro.model.workload import STANDARD_WORKLOADS
    from repro.queueing.bounds import (aggregate_mix_network,
                                       balanced_job_bounds,
                                       saturation_population)
    sites = paper_sites()
    lines = [f"operational bounds at n={requests} (zero-conflict, "
             "per site; X-ub in completions/s):",
             f"  {'workload':<10}{'site':<6}{'X-ub':>8}{'N-sat':>8}"]
    for name, factory in sorted(STANDARD_WORKLOADS.items()):
        workload = factory(requests)
        model = CaratModel(ModelConfig(workload=workload, sites=sites))
        for site_name in workload.sites:
            aggregate = aggregate_mix_network(
                model.site_network(site_name))
            chain_bounds = balanced_job_bounds(aggregate, "mix")
            n_star = saturation_population(aggregate, "mix")
            lines.append(f"  {name:<10}{site_name:<6}"
                         f"{chain_bounds.throughput_upper * 1e3:>8.2f}"
                         f"{n_star:>8.1f}")
    return "\n".join(lines)


def render_plan_text(result: PlanResult) -> str:
    """Human-readable capacity plan."""
    lines = (_optimum_lines(result) + _slo_lines(result)
             + _bottleneck_lines(result) + _whatif_lines(result))
    return "\n".join(lines)


def render_plan_json(result: PlanResult, indent: int | None = 2) -> str:
    """The plan as a JSON document (``inf`` window edges serialized
    as the string ``"inf"`` so the output stays standard JSON)."""
    def _clean(obj):
        if isinstance(obj, float) and not math.isfinite(obj):
            return "inf" if obj > 0 else "-inf"
        if isinstance(obj, dict):
            return {k: _clean(v) for k, v in obj.items()}
        if isinstance(obj, list):
            return [_clean(v) for v in obj]
        return obj

    return json.dumps(_clean(result.to_dict()), indent=indent)
