"""Capacity-plan inputs and results.

The planner's vocabulary: a :class:`PlanSpec` asks capacity questions
about one workload mix ("how many users can this testbed carry?"),
and a :class:`PlanResult` answers them — the throughput-optimal MPL,
the thrashing knee, saturation windows from operational bounds,
SLO verdicts and the bottleneck/what-if tables.

All dataclasses here are frozen and picklable: the what-if engine
ships candidates to worker processes, and the result cache hashes
specs into content digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.model.workload import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.scenarios.spec import ScenarioSpec

__all__ = ["SloSpec", "PlanSpec", "MplPoint", "SaturationWindow",
           "OptimumResult", "SloVerdict", "BottleneckEntry",
           "WhatIfCandidate", "WhatIfOutcome", "PlanResult"]


@dataclass(frozen=True)
class SloSpec:
    """Service-level objectives to check against the plan.

    ``response_ms`` bounds the mean user commit-cycle response time;
    ``abort_probability`` bounds the mean per-execution abort
    probability.  Either may be ``None`` (not requested).
    """

    response_ms: float | None = None
    abort_probability: float | None = None

    def __post_init__(self) -> None:
        if self.response_ms is not None and self.response_ms <= 0:
            raise ConfigurationError("SLO response time must be > 0 ms")
        if self.abort_probability is not None and not (
                0.0 < self.abort_probability < 1.0):
            raise ConfigurationError(
                "SLO abort probability must lie in (0, 1)")

    @property
    def is_empty(self) -> bool:
        return self.response_ms is None and self.abort_probability is None


@dataclass(frozen=True)
class WhatIfCandidate:
    """One hardware/configuration variation to evaluate.

    ``kind`` selects the transformation applied to every site:

    * ``"cpu_speed"`` — CPU ``factor``× faster (every per-phase and
      protocol CPU cost divided by ``factor``);
    * ``"disk_speed"`` — disks ``factor``× faster
      (:meth:`~repro.model.parameters.SiteParameters.with_block_io`);
    * ``"granules"`` — database granule count scaled by ``factor``
      (halves/doubles lock conflict probability);
    * ``"log_split"`` — commit log moved to a dedicated disk
      (``factor`` ignored).
    """

    kind: str
    factor: float = 1.0

    _KINDS = ("cpu_speed", "disk_speed", "granules", "log_split")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"unknown what-if kind {self.kind!r}; "
                f"expected one of {self._KINDS}")
        if self.kind != "log_split" and self.factor <= 0:
            raise ConfigurationError(
                f"what-if factor must be positive, got {self.factor}")

    @property
    def label(self) -> str:
        if self.kind == "log_split":
            return "log on separate disk"
        noun = {"cpu_speed": "CPU", "disk_speed": "disk",
                "granules": "granules"}[self.kind]
        return f"{noun} x{self.factor:g}"


@dataclass(frozen=True)
class PlanSpec:
    """One capacity-planning question.

    ``workload`` fixes the *mix* (relative populations per site and
    type); the planner scales it to different multiprogramming levels.
    ``mpl_max`` caps the per-site MPL searched.  Solver knobs are part
    of the spec so cached evaluations are keyed by them.
    """

    workload: WorkloadSpec
    mpl_max: int = 24
    slo: SloSpec = field(default_factory=SloSpec)
    whatif: tuple[WhatIfCandidate, ...] = ()
    mva: str = "auto"
    tolerance: float = 1e-4
    max_iterations: int = 600

    def __post_init__(self) -> None:
        if self.mpl_max < 1:
            raise ConfigurationError("mpl_max must be >= 1")

    @classmethod
    def for_scenario(cls, scenario: ScenarioSpec,
                     n: int | None = None,
                     **kwargs: Any) -> PlanSpec:
        """Plan a scenario's compiled mix.

        The scenario lowers through
        :func:`repro.scenarios.compile.compile_workload` (lazy import;
        the planner stays importable without the scenarios package)
        and the remaining :class:`PlanSpec` fields pass through.
        """
        from repro.scenarios.compile import compile_workload
        return cls(workload=compile_workload(scenario, n=n), **kwargs)

    @property
    def model_kwargs(self) -> dict:
        """Solver kwargs for each evaluation (non-raising: a point
        that fails to converge is reported, not fatal)."""
        return {"mva": self.mva, "tolerance": self.tolerance,
                "max_iterations": self.max_iterations,
                "raise_on_nonconvergence": False}


@dataclass(frozen=True)
class MplPoint:
    """Converged measures of the mix at one multiprogramming level.

    ``mpl`` is the *per-site* user population; ``site_populations``
    are the site-network customer counts (users plus slave-chain
    customers from remote sites).
    """

    mpl: int
    site_populations: dict[str, int]
    throughput_per_s: float
    response_ms: float
    abort_probability: float
    converged: bool

    def to_dict(self) -> dict:
        return {"mpl": self.mpl,
                "site_populations": dict(self.site_populations),
                "throughput_per_s": self.throughput_per_s,
                "response_ms": self.response_ms,
                "abort_probability": self.abort_probability,
                "converged": self.converged}


@dataclass(frozen=True)
class SaturationWindow:
    """Operational-bounds sandwich of one site's saturation point.

    Computed on the *converged* site network (lock, remote and commit
    waits folded in as delay demands), in site-network customers:
    ``lower`` is the asymptotic-bounds crossing ``N* = (D+Z)/D_max``,
    ``upper`` the balanced-job upper-bound crossing.  ``binding``
    names the asymptotic bound active at the evaluated population.
    """

    site: str
    population: int
    lower: float
    upper: float
    binding: str  #: "bottleneck" (1/D_max) or "population" (N/(D+Z))

    def to_dict(self) -> dict:
        return {"site": self.site, "population": self.population,
                "lower": self.lower, "upper": self.upper,
                "binding": self.binding}


@dataclass(frozen=True)
class OptimumResult:
    """Outcome of the optimal-MPL search."""

    point: MplPoint
    grid: tuple[int, ...]
    windows: tuple[SaturationWindow, ...]
    #: Thrashing knee: smallest evaluated MPL past the optimum whose
    #: throughput fell >5% below the peak (``None`` if the curve never
    #: dropped within the searched grid).
    knee_mpl: int | None
    evaluations: int
    solves: int
    cache_hits: int
    total_iterations: int
    #: Result-cache misses (fresh solves that had to compute despite
    #: ``use_cache``); 0 when the search ran uncached.  Defaulted so
    #: positional construction predating the field keeps working.
    cache_misses: int = 0

    def to_dict(self) -> dict:
        return {"point": self.point.to_dict(),
                "grid": list(self.grid),
                "windows": [w.to_dict() for w in self.windows],
                "knee_mpl": self.knee_mpl,
                "evaluations": self.evaluations,
                "solves": self.solves,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "total_iterations": self.total_iterations}


@dataclass(frozen=True)
class SloVerdict:
    """Answer to one SLO question.

    ``max_mpl`` is the largest grid MPL meeting the target (``None``
    when even the smallest searched MPL misses it);
    ``max_arrival_per_s`` is the open-model capacity — the highest
    total user arrival rate sustaining the target (response SLOs
    only).
    """

    kind: str  #: "response_ms" or "abort_probability"
    target: float
    max_mpl: int | None
    value_at_max: float | None
    met_at_optimum: bool
    max_arrival_per_s: float | None = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "target": self.target,
                "max_mpl": self.max_mpl,
                "value_at_max": self.value_at_max,
                "met_at_optimum": self.met_at_optimum,
                "max_arrival_per_s": self.max_arrival_per_s}


@dataclass(frozen=True)
class BottleneckEntry:
    """One service center's contribution at one site.

    ``residence_share`` is the throughput-weighted share of the user
    commit-cycle response spent at the center; ``utilization`` is set
    for the physical centers (cpu/disk/logdisk) and ``None`` for the
    synchronization delay centers (lw/rw/cw).
    """

    site: str
    center: str
    residence_share: float
    utilization: float | None = None

    def to_dict(self) -> dict:
        return {"site": self.site, "center": self.center,
                "residence_share": self.residence_share,
                "utilization": self.utilization}


@dataclass(frozen=True)
class WhatIfOutcome:
    """Effect of one candidate at the baseline-optimal MPL."""

    candidate: WhatIfCandidate
    throughput_per_s: float
    response_ms: float
    speedup: float  #: throughput ratio vs. the baseline optimum
    bottleneck: str  #: top residence-share center after the change

    def to_dict(self) -> dict:
        return {"candidate": {"kind": self.candidate.kind,
                              "factor": self.candidate.factor,
                              "label": self.candidate.label},
                "throughput_per_s": self.throughput_per_s,
                "response_ms": self.response_ms,
                "speedup": self.speedup,
                "bottleneck": self.bottleneck}


@dataclass(frozen=True)
class PlanResult:
    """Full answer to a :class:`PlanSpec`."""

    workload: str
    requests_per_txn: int
    quantum: int
    optimum: OptimumResult
    slo: tuple[SloVerdict, ...]
    bottlenecks: tuple[BottleneckEntry, ...]
    whatif: tuple[WhatIfOutcome, ...]

    def to_dict(self) -> dict:
        return {"workload": self.workload,
                "requests_per_txn": self.requests_per_txn,
                "quantum": self.quantum,
                "optimum": self.optimum.to_dict(),
                "slo": [v.to_dict() for v in self.slo],
                "bottlenecks": [b.to_dict() for b in self.bottlenecks],
                "whatif": [w.to_dict() for w in self.whatif]}
