"""Bottleneck attribution over a converged model solution.

Ranks every service center by how much of the user commit cycle it
absorbs: the throughput-weighted mean of each chain's residence share
(:meth:`~repro.model.results.ChainResult.residence_fraction`).  This
covers both the physical centers (cpu/disk/logdisk, which also carry a
utilization) and the synchronization delay centers (lock wait, remote
wait, commit wait) that dominate once the mix thrashes — the paper's
own diagnosis of the testbed was exactly such a shared-disk plus
lock-wait attribution.
"""

from __future__ import annotations

from repro.model.results import USER_CHAINS, ModelSolution, SiteResult
from repro.planner.spec import BottleneckEntry

__all__ = ["bottleneck_table", "top_bottleneck"]

#: Centers excluded from attribution ("ut" is the user's own think
#: time, not a resource the testbed provides).
_EXCLUDED = frozenset({"ut"})

#: Physical centers whose site-level utilization is reported.
_UTILIZATION = {"cpu": "cpu_utilization", "disk": "disk_utilization",
                "logdisk": "log_disk_utilization"}


def _site_entries(site: SiteResult) -> list[BottleneckEntry]:
    weights: dict[str, float] = {}
    total = 0.0
    for chain, result in site.chains.items():
        if chain not in USER_CHAINS or result.throughput_per_s <= 0:
            continue
        total += result.throughput_per_s
        for center, residence in result.residence_ms.items():
            if center in _EXCLUDED or result.cycle_response_ms <= 0:
                continue
            weights[center] = (
                weights.get(center, 0.0)
                + result.throughput_per_s
                * residence / result.cycle_response_ms
            )
    entries = []
    for center, weight in weights.items():
        utilization = None
        attr = _UTILIZATION.get(center)
        if attr is not None:
            utilization = getattr(site, attr)
        entries.append(BottleneckEntry(
            site=site.site, center=center,
            residence_share=weight / total if total > 0 else 0.0,
            utilization=utilization))
    return entries


def bottleneck_table(solution: ModelSolution) -> tuple[BottleneckEntry,
                                                       ...]:
    """All (site, center) entries, worst offender first."""
    entries: list[BottleneckEntry] = []
    for site in solution.sites.values():
        entries.extend(_site_entries(site))
    entries.sort(key=lambda e: e.residence_share, reverse=True)
    return tuple(entries)


def top_bottleneck(solution: ModelSolution) -> str:
    """Name of the center absorbing the largest share of the user
    cycle anywhere in the system (``"none"`` for an idle solution)."""
    table = bottleneck_table(solution)
    return table[0].center if table else "none"
