"""Optimal-MPL and SLO search over warm-started model solves.

The searcher answers "how many users should this testbed carry?"
without sweeping every multiprogramming level:

* **mix-preserving grid** — scaling a workload's population must keep
  the mix's integer type counts, or the throughput curve grows a
  sawtooth from rounding (an MPL that drops the distributed types
  entirely conflicts less and looks spuriously fast).  The grid is the
  multiples of :func:`mix_quantum`, on which the throughput curve is
  unimodal: it rises to the contention optimum and falls into
  thrashing.
* **golden-section style search** — on a unimodal grid the optimum is
  found with ``O(log)`` full fixed-point solves instead of one per
  grid point (ternary search with memoization); the operational
  bounds of the converged network then sandwich the saturation point.
* **warm-started, memoized evaluations** — every solve seeds from the
  nearest previously converged MPL
  (:meth:`repro.model.solver.CaratModel.snapshot`) and lands in the
  content-addressed result cache, so repeated plans are nearly free.

SLO questions reduce to bisection: response time and abort
probability grow monotonically with population, so the largest
feasible MPL is a predicate boundary on the same grid.  Arrival-rate
capacity uses the open model (:mod:`repro.model.open_solver`), where
saturation is an explicit :class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import replace

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.model.open_solver import OpenWorkload, solve_open_model
from repro.model.parameters import SiteParameters
from repro.model.results import USER_CHAINS, ModelSolution
from repro.model.solver import CaratModel, ModelConfig, WarmStart
from repro.model.workload import WorkloadSpec
from repro.obs import metrics as obs
from repro.planner.spec import MplPoint, OptimumResult, SaturationWindow
from repro.queueing.bounds import (aggregate_mix_network,
                                   bjb_saturation_population,
                                   saturation_population)
from repro.queueing.kernels import NetworkArrays, solve_schweitzer_batch

__all__ = ["mix_quantum", "scale_to_mpl", "mpl_grid", "PlanEvaluator",
           "find_optimum", "brute_force_optimum", "prefetch_across",
           "slo_max_mpl", "slo_max_arrival_per_s"]

#: Throughput drop (relative to the peak) that counts as thrashing.
KNEE_DROP = 0.05

#: Zero-conflict bottleneck utilization treated as "saturated" by the
#: grid pre-screen (just under 1.0: the Schweitzer curve approaches
#: saturation asymptotically).
ZERO_CONFLICT_SATURATION = 0.95


def _site_quantum(counts: dict) -> int:
    positive = [c for c in counts.values() if c > 0]
    if not positive:
        raise ConfigurationError(
            "cannot scale a site with no users; remove it from the "
            "workload instead")
    return sum(positive) // math.gcd(*positive, 0)


def mix_quantum(workload: WorkloadSpec) -> int:
    """Smallest per-site MPL step preserving the workload's mix.

    Per site the step is ``total / gcd(counts)``; across sites it is
    the lcm of the steps, so every multiple scales *all* sites to the
    same per-site population with exactly proportional integer type
    counts.
    """
    quantum = 1
    for counts in workload.users.values():
        quantum = math.lcm(quantum, _site_quantum(counts))
    return quantum


def scale_to_mpl(workload: WorkloadSpec, mpl: int) -> WorkloadSpec:
    """The workload scaled so every site holds *mpl* users, mix
    preserved exactly.

    *mpl* must be a multiple of :func:`mix_quantum`; anything else
    cannot keep the type proportions integral and raises
    :class:`~repro.errors.ConfigurationError`.
    """
    quantum = mix_quantum(workload)
    if mpl < 1 or mpl % quantum:
        raise ConfigurationError(
            f"MPL {mpl} does not preserve the {workload.name} mix; "
            f"use a positive multiple of {quantum}")
    users = {}
    for site, counts in workload.users.items():
        total = sum(counts.values())
        users[site] = {base: mpl * count // total
                       for base, count in counts.items() if count > 0}
    return replace(workload, users=users)


def mpl_grid(workload: WorkloadSpec, mpl_max: int) -> tuple[int, ...]:
    """Mix-preserving MPL grid up to *mpl_max* (always non-empty: the
    single quantum point when the cap is below one quantum)."""
    quantum = mix_quantum(workload)
    top = max(mpl_max, quantum)
    return tuple(range(quantum, top + 1, quantum))


def _user_measures(solution: ModelSolution):
    """Population-weighted response and abort means over user chains."""
    weight = response = aborts = 0.0
    for site in solution.sites.values():
        for chain, result in site.chains.items():
            if chain not in USER_CHAINS or result.population <= 0:
                continue
            weight += result.population
            response += result.population * result.cycle_response_ms
            aborts += result.population * result.abort_probability
    if weight <= 0:
        return 0.0, 0.0
    return response / weight, aborts / weight


class PlanEvaluator:
    """Memoized, warm-started, cached model evaluations per MPL.

    One evaluator owns one (workload mix, sites, solver kwargs)
    context.  :meth:`point` returns the converged :class:`MplPoint`
    for a grid MPL, solving at most once: repeats hit the in-process
    memo, and with ``use_cache`` the content-addressed result cache
    (:mod:`repro.experiments.cache`) serves identical evaluations
    across processes and sessions.  Fresh solves warm-start from the
    nearest already-evaluated MPL.

    ``solves`` / ``cache_hits`` / ``total_iterations`` are the perf
    counters the search strategies are judged by.
    """

    def __init__(self, workload: WorkloadSpec,
                 sites: dict[str, SiteParameters],
                 model_kwargs: dict | None = None,
                 use_cache: bool = False,
                 cache=None):
        from repro.experiments.cache import ResultCache
        self.workload = workload
        self.sites = dict(sites)
        self.model_kwargs = dict(model_kwargs or {})
        self.model_kwargs.setdefault("raise_on_nonconvergence", False)
        self.use_cache = use_cache
        self.cache = cache or (ResultCache() if use_cache else None)
        self.quantum = mix_quantum(workload)
        self.solves = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.total_iterations = 0
        self._entries: dict[int, dict] = {}

    def _hit(self, mpl: int, cached: dict) -> dict:
        """Record one result-cache hit (memo + counters + obs)."""
        self.cache_hits += 1
        self._entries[mpl] = cached
        obs.add("planner.cache_hits")
        obs.add("planner.evaluations")
        return cached

    def absorb_counters(self, solves: int = 0, cache_hits: int = 0,
                        cache_misses: int = 0,
                        total_iterations: int = 0) -> None:
        """Fold another evaluator's perf counters into this one.

        The what-if engine evaluates candidates on evaluators of their
        own — possibly in worker processes — and ships the counters
        back here so a plan's totals cover every solve it caused
        instead of silently dropping the fan-out's share at join.
        """
        self.solves += solves
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses
        self.total_iterations += total_iterations

    # ---- evaluation ----------------------------------------------------

    def _digest(self, scaled: WorkloadSpec) -> str:
        from repro.experiments.cache import payload_digest
        return payload_digest("plan-eval", {
            "workload": scaled,
            "sites": self.sites,
            "model_kwargs": self.model_kwargs,
        })

    def _nearest_snapshot(self, mpl: int) -> WarmStart | None:
        solved = [m for m, e in self._entries.items()
                  if e.get("snapshot") is not None]
        if not solved:
            return None
        nearest = min(solved, key=lambda m: abs(m - mpl))
        return self._entries[nearest]["snapshot"]

    def _entry(self, mpl: int) -> dict:
        entry = self._entries.get(mpl)
        if entry is not None:
            return entry
        scaled = scale_to_mpl(self.workload, mpl)
        digest = self._digest(scaled) if self.use_cache else None
        if digest is not None:
            cached = self.cache.get_payload(digest)
            if cached is not None:
                return self._hit(mpl, cached)
        model = CaratModel(
            ModelConfig(workload=scaled, sites=self.sites,
                        **self.model_kwargs),
            warm_start=self._nearest_snapshot(mpl))
        return self._finish_entry(mpl, scaled, digest, model,
                                  model.solve())

    def _finish_entry(self, mpl: int, scaled: WorkloadSpec,
                      digest: str | None, model: CaratModel,
                      solution: ModelSolution) -> dict:
        """Memoize (and cache) one solved MPL's entry dict."""
        self.solves += 1
        self.total_iterations += solution.iterations
        if digest is not None:
            self.cache_misses += 1
        obs.add("planner.solves")
        obs.add("planner.evaluations")
        obs.add("planner.iterations", float(solution.iterations))
        response_ms, abort_probability = _user_measures(solution)
        point = MplPoint(
            mpl=mpl,
            site_populations={
                name: sum(scaled.chain_populations(name).values())
                for name in scaled.sites},
            throughput_per_s=solution.total_throughput_per_s(),
            response_ms=response_ms,
            abort_probability=abort_probability,
            converged=solution.converged,
        )
        windows = tuple(
            self._window(model, name, point.site_populations[name])
            for name in scaled.sites)
        entry = {"point": point, "solution": solution,
                 "windows": windows, "snapshot": model.snapshot()}
        self._entries[mpl] = entry
        if digest is not None:
            self.cache.put_payload(digest, entry)
        return entry

    def prefetch(self, mpls) -> None:
        """Solve a set of grid MPLs as one batched tensor program.

        Memoized and cached MPLs are skipped; the remaining points are
        independent cold solves, so they run through
        :func:`repro.model.outer.solve_outer_batch` in lockstep with
        per-element convergence masking and land in the memo (and the
        result cache) exactly as sequential evaluations would.  A
        grid-sweeping caller (:func:`brute_force_optimum`,
        ``repro plan --curve``) turns one solve per point into one
        batched program per grid.
        """
        from repro.model.outer import solve_outer_batch

        todo: list[tuple[int, WorkloadSpec, str | None]] = []
        for mpl in sorted(set(mpls)):
            if mpl in self._entries:
                continue
            scaled = scale_to_mpl(self.workload, mpl)
            digest = self._digest(scaled) if self.use_cache else None
            if digest is not None:
                cached = self.cache.get_payload(digest)
                if cached is not None:
                    self._hit(mpl, cached)
                    continue
            todo.append((mpl, scaled, digest))
        if not todo:
            return
        models = [
            CaratModel(ModelConfig(workload=scaled, sites=self.sites,
                                   **self.model_kwargs))
            for _, scaled, _ in todo
        ]
        solutions = solve_outer_batch(models)
        for (mpl, scaled, digest), model, solution in zip(
                todo, models, solutions):
            self._finish_entry(mpl, scaled, digest, model, solution)

    @staticmethod
    def _window(model: CaratModel, site: str,
                population: int) -> SaturationWindow:
        """Saturation sandwich of the site's *converged* network.

        After :meth:`~repro.model.solver.CaratModel.solve` the site
        network carries the fixed point's lock/remote/commit waits as
        delay demands, so the operational bounds apply to the
        contention-laden system the users actually see — the
        zero-conflict window badly underestimates the optimum when
        the disk saturates before lock thrashing sets in.
        """
        network = model.site_network(site)
        aggregate = aggregate_mix_network(network)
        lower = saturation_population(aggregate, "mix")
        upper = bjb_saturation_population(aggregate, "mix")
        binding = "bottleneck" if population >= lower else "population"
        return SaturationWindow(site=site, population=population,
                                lower=lower, upper=upper,
                                binding=binding)

    def zero_conflict_curve(self, grid: tuple[int, ...]
                            ) -> dict[int, float]:
        """Zero-conflict bottleneck utilization per grid MPL.

        Right after construction the model's site networks carry no
        lock, remote or commit waits, and their demands do not depend
        on the population — so the whole MPL grid differs only in its
        population vectors.  That is exactly the shape
        :func:`repro.queueing.kernels.solve_schweitzer_batch` stacks:
        the curve costs one batched kernel call per site instead of
        one network solve per (site, MPL) pair.

        Returns ``{mpl: max over sites and queueing centers of the
        zero-conflict utilization}`` — the cheap pre-screen
        :func:`find_optimum` floors its search grid with.  Grid MPLs
        must be multiples of the evaluator's quantum.
        """
        scaled = scale_to_mpl(self.workload, self.quantum)
        model = CaratModel(ModelConfig(workload=scaled, sites=self.sites,
                                       **self.model_kwargs))
        utilization = dict.fromkeys(grid, 0.0)
        factors = np.array([m // self.quantum for m in grid],
                           dtype=np.int64)
        for name in scaled.sites:
            arrays = NetworkArrays.from_network(model.site_network(name))
            if not arrays.chains:
                continue
            pops = arrays.populations[None, :] * factors[:, None]
            demands = np.broadcast_to(
                arrays.demands, (len(grid),) + arrays.demands.shape)
            result = solve_schweitzer_batch(demands, arrays.delay, pops)
            queueing_demands = arrays.demands[~arrays.delay, :]
            for i, m in enumerate(grid):
                util = (result.throughput[i][None, :]
                        * queueing_demands).sum(axis=1)
                top = float(util.max()) if util.size else 0.0
                utilization[m] = max(utilization[m], top)
        return utilization

    def point(self, mpl: int) -> MplPoint:
        """Converged measures at *mpl* (solved at most once)."""
        return self._entry(mpl)["point"]

    def solution(self, mpl: int) -> ModelSolution:
        """Full model solution at *mpl*."""
        return self._entry(mpl)["solution"]

    def windows(self, mpl: int) -> tuple[SaturationWindow, ...]:
        """Per-site converged-network saturation windows at *mpl*."""
        return self._entry(mpl)["windows"]

    def evaluated(self) -> tuple[int, ...]:
        """MPLs evaluated so far, ascending."""
        return tuple(sorted(self._entries))


def _throughput(evaluator: PlanEvaluator, mpl: int) -> float:
    return evaluator.point(mpl).throughput_per_s


def _ternary_argmax(f, grid: tuple[int, ...]) -> int:
    """Index of the maximum of a unimodal *f* over *grid*.

    Discrete ternary search: each round evaluates (at most) two
    interior points and discards a third of the interval, so the
    number of *distinct* evaluations is ``O(log |grid|)`` — the whole
    reason the planner beats a brute-force sweep.  Memoization in the
    evaluator makes repeated probes free.
    """
    lo, hi = 0, len(grid) - 1
    while hi - lo > 2:
        third = (hi - lo) // 3
        m1, m2 = lo + third, hi - third
        if m1 == m2:
            m2 += 1
        if f(grid[m1]) < f(grid[m2]):
            lo = m1 + 1
        else:
            hi = m2 - 1
    return max(range(lo, hi + 1), key=lambda i: f(grid[i]))


def _find_knee(evaluator: PlanEvaluator, optimum_mpl: int) -> int | None:
    """Smallest *evaluated* MPL past the optimum that fell >5% below
    the peak — evidence the curve has tipped into thrashing."""
    peak = evaluator.point(optimum_mpl).throughput_per_s
    for mpl in evaluator.evaluated():
        if (mpl > optimum_mpl
                and evaluator.point(mpl).throughput_per_s
                < (1.0 - KNEE_DROP) * peak):
            return mpl
    return None


def _optimum_result(evaluator: PlanEvaluator, grid: tuple[int, ...],
                    best: int) -> OptimumResult:
    return OptimumResult(
        point=evaluator.point(best),
        grid=grid,
        windows=evaluator.windows(best),
        knee_mpl=_find_knee(evaluator, best),
        evaluations=len(evaluator.evaluated()),
        solves=evaluator.solves,
        cache_hits=evaluator.cache_hits,
        total_iterations=evaluator.total_iterations,
        cache_misses=evaluator.cache_misses,
    )


def find_optimum(evaluator: PlanEvaluator,
                 mpl_max: int) -> OptimumResult:
    """Throughput-optimal MPL by ternary search on the quantum grid.

    Before any full solve, the *zero-conflict* saturation population
    of the smallest mix seeds the search: the contention optimum can
    never lie below the point where the physical bottleneck saturates
    without any lock conflict, so grid points strictly below it need
    no evaluation when the grid is long enough to spare them.
    """
    grid = mpl_grid(evaluator.workload, mpl_max)
    if len(grid) > 3:
        floor = _zero_conflict_floor(evaluator, grid)
        if floor is not None:
            # Keep one pre-floor point so the bracket still sees the
            # rising edge of the curve.
            start = max(0, sum(1 for m in grid if m < floor) - 1)
            if len(grid) - start >= 3:
                grid_searched = grid[start:]
            else:
                grid_searched = grid
        else:
            grid_searched = grid
    else:
        grid_searched = grid
    best = grid_searched[
        _ternary_argmax(lambda m: _throughput(evaluator, m),
                        grid_searched)]
    return _optimum_result(evaluator, grid, best)


def _zero_conflict_floor(evaluator: PlanEvaluator,
                         grid: tuple[int, ...]) -> float | None:
    """Per-site MPL at which the mix saturates its physical bottleneck
    *ignoring all contention* — a cheap lower bound on the optimum
    computed without any fixed-point solve.

    Prefers the batched zero-conflict curve
    (:meth:`PlanEvaluator.zero_conflict_curve`): the first grid MPL
    whose bottleneck utilization reaches
    :data:`ZERO_CONFLICT_SATURATION`.  That point precedes the exact
    saturation population, so the floor it yields trims the search
    grid no harder than the analytic bound.  When no grid point gets
    that close to saturation (or the curve is unavailable), falls
    back to the analytic asymptote of the aggregated mix network.
    """
    with contextlib.suppress(ConfigurationError, ConvergenceError):
        curve = evaluator.zero_conflict_curve(grid)
        for m in grid:
            if curve[m] >= ZERO_CONFLICT_SATURATION:
                return float(m)
    scaled = scale_to_mpl(evaluator.workload, evaluator.quantum)
    try:
        model = CaratModel(ModelConfig(workload=scaled,
                                       sites=evaluator.sites,
                                       **evaluator.model_kwargs))
        floors = []
        for name in scaled.sites:
            network = model.site_network(name)
            aggregate = aggregate_mix_network(network)
            n_star = saturation_population(aggregate, "mix")
            site_pop = sum(network.populations.values())
            # Convert site-network customers to per-site user MPL.
            floors.append(n_star * evaluator.quantum / site_pop)
        return min(floors)
    except ConfigurationError:
        return None


def brute_force_optimum(evaluator: PlanEvaluator,
                        mpl_max: int) -> OptimumResult:
    """Reference search: evaluate *every* grid point.

    Exists to validate :func:`find_optimum` (same optimum to within
    one grid step, strictly more solves) and for plotting the full
    curve.  The grid is prefetched as one batched tensor program
    (:meth:`PlanEvaluator.prefetch`) before being scanned.
    """
    grid = mpl_grid(evaluator.workload, mpl_max)
    evaluator.prefetch(grid)
    best = max(grid, key=lambda m: _throughput(evaluator, m))
    return _optimum_result(evaluator, grid, best)


def prefetch_across(evaluators, mpl: int) -> None:
    """Solve one MPL across several evaluators as one batched program.

    The cross-evaluator analogue of :meth:`PlanEvaluator.prefetch`:
    memo and cache hits are served first, then every remaining
    evaluator contributes one cold model and the whole set runs
    through :func:`repro.model.outer.solve_outer_batch` together.
    The what-if engine uses this to evaluate all hardware candidates
    (which share a workload but differ in site parameters) as a
    single tensor program.
    """
    from repro.model.outer import solve_outer_batch

    todo = []
    for ev in evaluators:
        if mpl in ev._entries:
            continue
        scaled = scale_to_mpl(ev.workload, mpl)
        digest = ev._digest(scaled) if ev.use_cache else None
        if digest is not None:
            cached = ev.cache.get_payload(digest)
            if cached is not None:
                ev._hit(mpl, cached)
                continue
        todo.append((ev, scaled, digest))
    if not todo:
        return
    models = [
        CaratModel(ModelConfig(workload=scaled, sites=ev.sites,
                               **ev.model_kwargs))
        for ev, scaled, _ in todo
    ]
    solutions = solve_outer_batch(models)
    for (ev, scaled, digest), model, solution in zip(
            todo, models, solutions):
        ev._finish_entry(mpl, scaled, digest, model, solution)


def slo_max_mpl(evaluator: PlanEvaluator, grid: tuple[int, ...],
                predicate) -> tuple[int | None, MplPoint | None]:
    """Largest grid MPL whose point satisfies *predicate*.

    Assumes the predicate is monotone (true at low MPL, false past
    some boundary) — which holds for response-time and abort-rate
    targets, both nondecreasing in population — and bisects, so only
    ``O(log |grid|)`` points are solved.
    """
    if not predicate(evaluator.point(grid[0])):
        return None, None
    if predicate(evaluator.point(grid[-1])):
        return grid[-1], evaluator.point(grid[-1])
    lo, hi = 0, len(grid) - 1  # invariant: lo feasible, hi infeasible
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if predicate(evaluator.point(grid[mid])):
            lo = mid
        else:
            hi = mid
    return grid[lo], evaluator.point(grid[lo])


def slo_max_arrival_per_s(
    workload: WorkloadSpec,
    sites: dict[str, SiteParameters],
    response_target_ms: float,
    max_doublings: int = 24,
    bisections: int = 24,
) -> float | None:
    """Highest total user arrival rate (transactions/s, all sites)
    meeting a mean-response target, via the open model.

    Arrival rates keep the closed mix's proportions.  The bracket
    grows geometrically until the open solver reports saturation
    (or the response target breaks), then bisects.  Returns ``None``
    when even a vanishing arrival rate misses the target (the target
    is below the no-contention response time).
    """
    counts = {site: {base: count
                     for base, count in bases.items() if count > 0}
              for site, bases in workload.users.items()}
    total_users = sum(sum(bases.values()) for bases in counts.values())

    def mean_response(per_user_rate: float) -> float | None:
        arrivals = {site: {base: per_user_rate * count
                           for base, count in bases.items()}
                    for site, bases in counts.items()}
        try:
            solution = solve_open_model(
                OpenWorkload(template=workload,
                             arrivals_per_s=arrivals), sites)
        except (ConfigurationError, ConvergenceError):
            return None  # saturated (or no steady state): infeasible
        weight = acc = 0.0
        for site_chains in solution.sites.values():
            for result in site_chains.values():
                weight += result.arrival_rate_per_s
                acc += result.arrival_rate_per_s * result.response_ms
        return acc / weight if weight > 0 else 0.0

    def feasible(per_user_rate: float) -> bool:
        response = mean_response(per_user_rate)
        return response is not None and response <= response_target_ms

    rate = 1e-3  # per-user transactions/s; vanishing load
    if not feasible(rate):
        return None
    for _ in range(max_doublings):
        if not feasible(rate * 2.0):
            break
        rate *= 2.0
    else:
        return rate * total_users  # target never broke within bracket
    lo, hi = rate, rate * 2.0
    for _ in range(bisections):
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo * total_users
