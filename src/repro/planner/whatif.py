"""Hardware what-if engine: re-plan under modified site parameters.

Each :class:`~repro.planner.spec.WhatIfCandidate` transforms every
site's parameters (faster CPU or disk, more granules, a dedicated log
disk) and re-evaluates the mix at the baseline-optimal MPL.  The
candidates are independent, so they fan out across worker processes
through the generic :func:`repro.experiments.parallel.map_calls`
invoker, and each evaluation is memoized in the content-addressed
result cache exactly like the baseline's.
"""

from __future__ import annotations

from dataclasses import replace

from repro.model.parameters import SiteParameters
from repro.model.workload import WorkloadSpec
from repro.planner.bottleneck import top_bottleneck
from repro.planner.search import PlanEvaluator
from repro.planner.spec import MplPoint, WhatIfCandidate, WhatIfOutcome

__all__ = ["standard_candidates", "apply_candidate", "run_whatif"]

#: BasicPhaseCosts fields that are CPU time (scaled by a CPU speedup).
_PHASE_CPU_FIELDS = ("u_cpu", "tm_cpu", "dm_cpu", "lr_cpu", "dmio_cpu")

#: ProtocolCosts fields that are CPU time.
_PROTOCOL_CPU_FIELDS = ("tbegin_cpu", "dbopen_cpu_per_site",
                        "commit_cpu", "undo_cpu_per_granule",
                        "unlock_cpu_per_lock", "abort_message_cpu")


def standard_candidates() -> tuple[WhatIfCandidate, ...]:
    """The default upgrade menu: faster CPU/disk, doubled granules,
    and the split log disk the paper suggests for the testbed."""
    return (WhatIfCandidate(kind="cpu_speed", factor=2.0),
            WhatIfCandidate(kind="disk_speed", factor=2.0),
            WhatIfCandidate(kind="granules", factor=2.0),
            WhatIfCandidate(kind="log_split"))


def _speed_up_cpu(site: SiteParameters,
                  factor: float) -> SiteParameters:
    costs = {
        base: replace(cost, **{name: getattr(cost, name) / factor
                               for name in _PHASE_CPU_FIELDS})
        for base, cost in site.costs.items()
    }
    protocol = replace(
        site.protocol,
        **{name: getattr(site.protocol, name) / factor
           for name in _PROTOCOL_CPU_FIELDS})
    return site.with_overrides(costs=costs, protocol=protocol)


def apply_candidate(sites: dict[str, SiteParameters],
                    candidate: WhatIfCandidate
                    ) -> dict[str, SiteParameters]:
    """Site parameters with *candidate*'s change applied everywhere."""
    changed = {}
    for name, site in sites.items():
        if candidate.kind == "cpu_speed":
            changed[name] = _speed_up_cpu(site, candidate.factor)
        elif candidate.kind == "disk_speed":
            changed[name] = site.with_block_io(
                site.block_io_ms / candidate.factor)
        elif candidate.kind == "granules":
            changed[name] = site.with_overrides(
                granules=max(1, round(site.granules
                                      * candidate.factor)))
        else:  # log_split — validated by WhatIfCandidate
            changed[name] = site.with_overrides(
                log_on_separate_disk=True)
    return changed


def evaluate_candidate(candidate: WhatIfCandidate,
                       workload: WorkloadSpec,
                       sites: dict[str, SiteParameters],
                       mpl: int,
                       model_kwargs: dict,
                       use_cache: bool = False) -> dict:
    """Solve the mix at *mpl* under one candidate's parameters.

    Module-level (not a closure) so :func:`map_calls` can pickle it
    into worker processes.  Returns plain measures; the speedup ratio
    against the baseline is attached by :func:`run_whatif` in the
    parent.
    """
    evaluator = PlanEvaluator(workload, apply_candidate(sites, candidate),
                              model_kwargs=model_kwargs,
                              use_cache=use_cache)
    point = evaluator.point(mpl)
    return {"candidate": candidate,
            "throughput_per_s": point.throughput_per_s,
            "response_ms": point.response_ms,
            "bottleneck": top_bottleneck(evaluator.solution(mpl)),
            "counters": _evaluator_counters(evaluator)}


def _evaluator_counters(evaluator: PlanEvaluator) -> dict:
    """The evaluator's perf counters, shippable across processes.

    Every candidate evaluation returns these so the parent can fold
    worker-side solve/cache/iteration counts back into its own totals
    (:meth:`PlanEvaluator.absorb_counters`) instead of losing them at
    the fan-out join.
    """
    return {"solves": evaluator.solves,
            "cache_hits": evaluator.cache_hits,
            "cache_misses": evaluator.cache_misses,
            "total_iterations": evaluator.total_iterations}


def _evaluate_batched(candidates: tuple[WhatIfCandidate, ...],
                      workload: WorkloadSpec,
                      sites: dict[str, SiteParameters],
                      mpl: int,
                      model_kwargs: dict,
                      use_cache: bool) -> list[dict]:
    """Evaluate every candidate in one batched outer fixed point."""
    from repro.planner.search import prefetch_across

    evaluators = [
        PlanEvaluator(workload, apply_candidate(sites, candidate),
                      model_kwargs=model_kwargs, use_cache=use_cache)
        for candidate in candidates
    ]
    prefetch_across(evaluators, mpl)
    results = []
    for candidate, evaluator in zip(candidates, evaluators):
        point = evaluator.point(mpl)
        results.append({
            "candidate": candidate,
            "throughput_per_s": point.throughput_per_s,
            "response_ms": point.response_ms,
            "bottleneck": top_bottleneck(evaluator.solution(mpl)),
            "counters": _evaluator_counters(evaluator),
        })
    return results


def run_whatif(candidates: tuple[WhatIfCandidate, ...],
               workload: WorkloadSpec,
               sites: dict[str, SiteParameters],
               baseline: MplPoint,
               model_kwargs: dict,
               jobs: int | None = 1,
               use_cache: bool = False,
               absorb_into: PlanEvaluator | None = None,
               ) -> tuple[WhatIfOutcome, ...]:
    """Evaluate *candidates* at the baseline-optimal MPL, in parallel.

    The returned outcomes keep the candidates' order; ``speedup`` is
    each candidate's throughput over the baseline optimum's.

    With ``jobs`` of ``None`` or ``1`` the candidates solve in-process
    as one batched tensor program
    (:func:`repro.planner.search.prefetch_across`): they share the
    workload's chain structure, so the whole upgrade menu is a single
    outer fixed point with per-element convergence masking.  Larger
    ``jobs`` fans candidates out across worker processes instead.

    ``absorb_into`` receives the candidate evaluators' solve/cache
    counters (:meth:`PlanEvaluator.absorb_counters`), so search-cost
    accounting survives the worker fan-out instead of dying with the
    child processes.
    """
    from repro.experiments.parallel import map_calls

    if not candidates:
        return ()
    if jobs in (None, 1):
        raw = _evaluate_batched(candidates, workload, sites,
                                baseline.mpl, model_kwargs, use_cache)
    else:
        raw = map_calls(evaluate_candidate, list(candidates), jobs=jobs,
                        kwargs={"workload": workload, "sites": sites,
                                "mpl": baseline.mpl,
                                "model_kwargs": model_kwargs,
                                "use_cache": use_cache})
    if absorb_into is not None:
        for result in raw:
            absorb_into.absorb_counters(**result["counters"])
    base = baseline.throughput_per_s
    return tuple(
        WhatIfOutcome(
            candidate=result["candidate"],
            throughput_per_s=result["throughput_per_s"],
            response_ms=result["response_ms"],
            speedup=(result["throughput_per_s"] / base
                     if base > 0 else 0.0),
            bottleneck=result["bottleneck"])
        for result in raw)
