"""Capacity planner: SLO-driven what-if engine over the analytic model.

Answers the questions the CARAT model exists for, without running a
brute-force sweep for each one:

* *What multiprogramming level maximizes throughput, and where does
  thrashing begin?*  (:func:`repro.planner.search.find_optimum` —
  golden-section style search over the mix-preserving MPL grid, with
  the operational bounds of :mod:`repro.queueing.bounds` sandwiching
  the saturation point.)
* *How many users / what arrival rate can we carry under a response or
  abort SLO?*  (:func:`repro.planner.search.slo_max_mpl`,
  :func:`repro.planner.search.slo_max_arrival_per_s`.)
* *Where does the time go, and what would an upgrade buy?*
  (:mod:`repro.planner.bottleneck`, :mod:`repro.planner.whatif`.)

The one-call entry point is :func:`plan`; the CLI front end is
``repro plan``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.model.parameters import SiteParameters, paper_sites
from repro.planner.bottleneck import bottleneck_table, top_bottleneck
from repro.planner.report import (render_plan_json, render_plan_text,
                                  render_workload_bounds)
from repro.planner.search import (PlanEvaluator, brute_force_optimum,
                                  find_optimum, mix_quantum, mpl_grid,
                                  scale_to_mpl, slo_max_arrival_per_s,
                                  slo_max_mpl)
from repro.planner.spec import (BottleneckEntry, MplPoint, OptimumResult,
                                PlanResult, PlanSpec, SaturationWindow,
                                SloSpec, SloVerdict, WhatIfCandidate,
                                WhatIfOutcome)
from repro.planner.whatif import (apply_candidate, run_whatif,
                                  standard_candidates)

__all__ = [
    "PlanSpec", "PlanResult", "SloSpec", "SloVerdict", "MplPoint",
    "OptimumResult", "SaturationWindow", "BottleneckEntry",
    "WhatIfCandidate", "WhatIfOutcome",
    "PlanEvaluator", "mix_quantum", "scale_to_mpl", "mpl_grid",
    "find_optimum", "brute_force_optimum", "slo_max_mpl",
    "slo_max_arrival_per_s",
    "bottleneck_table", "top_bottleneck",
    "apply_candidate", "run_whatif", "standard_candidates",
    "render_plan_text", "render_plan_json", "render_workload_bounds",
    "plan",
]


def _slo_verdicts(spec: PlanSpec, evaluator: PlanEvaluator,
                  optimum, grid) -> tuple[SloVerdict, ...]:
    verdicts: list[SloVerdict] = []
    slo = spec.slo
    if slo.response_ms is not None:
        max_mpl, point = slo_max_mpl(
            evaluator, grid,
            lambda p: p.response_ms <= slo.response_ms)
        verdicts.append(SloVerdict(
            kind="response_ms",
            target=slo.response_ms,
            max_mpl=max_mpl,
            value_at_max=point.response_ms if point else None,
            met_at_optimum=optimum.point.response_ms
            <= slo.response_ms,
            max_arrival_per_s=slo_max_arrival_per_s(
                spec.workload, evaluator.sites, slo.response_ms),
        ))
    if slo.abort_probability is not None:
        max_mpl, point = slo_max_mpl(
            evaluator, grid,
            lambda p: p.abort_probability <= slo.abort_probability)
        verdicts.append(SloVerdict(
            kind="abort_probability",
            target=slo.abort_probability,
            max_mpl=max_mpl,
            value_at_max=point.abort_probability if point else None,
            met_at_optimum=optimum.point.abort_probability
            <= slo.abort_probability,
        ))
    return tuple(verdicts)


def plan(spec: PlanSpec,
         sites: dict[str, SiteParameters] | None = None,
         jobs: int | None = 1,
         use_cache: bool = False) -> PlanResult:
    """Answer a capacity-planning question end to end.

    Finds the throughput-optimal MPL, checks the requested SLOs on
    the same memoized evaluator (the searches share solves), builds
    the bottleneck table at the optimum and fans the what-if
    candidates out over *jobs* workers.  With ``use_cache`` every
    model solve is memoized in the content-addressed result cache.
    """
    sites = sites or paper_sites()
    evaluator = PlanEvaluator(spec.workload, sites,
                              model_kwargs=spec.model_kwargs,
                              use_cache=use_cache)
    optimum = find_optimum(evaluator, spec.mpl_max)
    verdicts = _slo_verdicts(spec, evaluator, optimum, optimum.grid)
    bottlenecks = bottleneck_table(
        evaluator.solution(optimum.point.mpl))
    outcomes = run_whatif(spec.whatif, spec.workload, sites,
                          optimum.point, spec.model_kwargs,
                          jobs=jobs, use_cache=use_cache,
                          absorb_into=evaluator)
    if spec.whatif:
        # The what-if evaluators' counters landed on the baseline
        # evaluator after the optimum snapshot was taken; refresh the
        # search-cost numbers so the report covers the whole plan.
        optimum = replace(optimum,
                          solves=evaluator.solves,
                          cache_hits=evaluator.cache_hits,
                          cache_misses=evaluator.cache_misses,
                          total_iterations=evaluator.total_iterations)
    return PlanResult(
        workload=spec.workload.name,
        requests_per_txn=spec.workload.requests_per_txn,
        quantum=evaluator.quantum,
        optimum=optimum,
        slo=verdicts,
        bottlenecks=bottlenecks,
        whatif=outcomes,
    )
