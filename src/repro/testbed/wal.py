"""Before-image write-ahead journal and crash recovery (paper §2).

CARAT journals the *before image* of every block an update transaction
overwrites.  The WAL rule: the before image must be durable before the
block itself is overwritten in place.  Undo by before-image restore is
only sound under strict two-phase locking — an uncommitted block has
exactly one writer — which CARAT's lock manager guarantees.  Commit durability comes from a
forced commit record; distributed transactions additionally force a
PREPARE record at each slave during two-phase commit, after which the
slave may no longer unilaterally abort.

Recovery after a crash (:func:`recover`):

* transactions with a durable COMMIT record need nothing (before
  images are only used for undo — CARAT propagates updates in place);
* transactions with a durable PREPARE but no COMMIT/ABORT are
  *in doubt* and are reported to the caller (their locks would be
  re-acquired; the coordinator decides their fate);
* every other transaction is rolled back by restoring its before
  images in reverse log order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import RecoveryError
from repro.testbed.storage import BlockStorage

__all__ = ["RecordType", "LogRecord", "Journal", "recover",
           "RecoveryReport"]


class RecordType(enum.Enum):
    """Journal record kinds."""

    BEGIN = "begin"
    BEFORE_IMAGE = "before_image"
    PREPARE = "prepare"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class LogRecord:
    """One journal record.

    ``granule``/``image`` are only meaningful for BEFORE_IMAGE records.
    """

    lsn: int
    kind: RecordType
    txn: str
    granule: int | None = None
    image: tuple[int, ...] | None = None


class Journal:
    """Append-only before-image journal with an explicit durable prefix.

    ``append`` adds to the volatile tail; ``force`` makes everything
    appended so far durable.  A crash discards the volatile tail.
    """

    def __init__(self) -> None:
        self._records: list[LogRecord] = []
        self._durable_upto = 0
        # Statistics.
        self.forces = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def durable_records(self) -> list[LogRecord]:
        """The crash-surviving prefix."""
        return self._records[: self._durable_upto]

    @property
    def backlog(self) -> int:
        """Volatile-tail length: records appended but not yet forced
        (what a crash right now would lose; telemetry probes sample
        this as the WAL backlog)."""
        return len(self._records) - self._durable_upto

    def append(self, kind: RecordType, txn: str,
               granule: int | None = None,
               image: tuple[int, ...] | None = None) -> LogRecord:
        """Append a record to the volatile tail."""
        record = LogRecord(lsn=len(self._records), kind=kind, txn=txn,
                           granule=granule, image=image)
        self._records.append(record)
        return record

    def force(self) -> int:
        """Make every appended record durable; returns records flushed."""
        flushed = len(self._records) - self._durable_upto
        self._durable_upto = len(self._records)
        if flushed:
            self.forces += 1
        return flushed

    def is_durable(self, record: LogRecord) -> bool:
        """True when *record* would survive a crash."""
        return record.lsn < self._durable_upto

    def crash(self) -> None:
        """Lose the volatile tail."""
        del self._records[self._durable_upto:]

    # -- undo -------------------------------------------------------------------

    def before_images(self, txn: str,
                      durable_only: bool = False) -> list[LogRecord]:
        """The transaction's BEFORE_IMAGE records, oldest first."""
        source = self.durable_records if durable_only else self._records
        return [r for r in source
                if r.txn == txn and r.kind is RecordType.BEFORE_IMAGE]

    def rollback(self, txn: str, storage: BlockStorage,
                 durable_only: bool = False) -> int:
        """Restore the transaction's before images in reverse order.

        Returns the number of blocks restored (first-image-per-granule
        semantics: only the *oldest* image of each granule matters,
        applied in reverse order this falls out naturally).
        """
        restored = 0
        for record in reversed(self.before_images(txn, durable_only)):
            if record.granule is None or record.image is None:
                raise RecoveryError(f"malformed before-image {record}")
            storage.write_block(record.granule, record.image, flush=True)
            restored += 1
        return restored


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of :func:`recover`."""

    committed: tuple[str, ...]
    rolled_back: tuple[str, ...]
    in_doubt: tuple[str, ...]
    blocks_restored: int


def recover(journal: Journal, storage: BlockStorage) -> RecoveryReport:
    """Restore a consistent database state from the durable journal.

    Applies undo for every transaction without a durable COMMIT,
    leaving prepared-but-undecided transactions in doubt (their
    effects are *also* undone here, pessimistically, because CARAT
    journals before images and re-does nothing; an in-doubt
    transaction that the coordinator later commits would be replayed
    by the application layer — the report surfaces them so tests can
    assert the protocol's obligations).
    """
    storage.crash()
    journal.crash()
    records = journal.durable_records
    committed: set[str] = set()
    aborted: set[str] = set()
    prepared: set[str] = set()
    seen: set[str] = set()
    for record in records:
        seen.add(record.txn)
        if record.kind is RecordType.COMMIT:
            committed.add(record.txn)
        elif record.kind is RecordType.ABORT:
            aborted.add(record.txn)
        elif record.kind is RecordType.PREPARE:
            prepared.add(record.txn)

    in_doubt = prepared - committed - aborted
    to_undo = seen - committed
    blocks = 0
    # Undo strictly in reverse global log order so overlapping
    # transactions restore the oldest surviving image last.
    for record in reversed(records):
        if (record.kind is RecordType.BEFORE_IMAGE
                and record.txn in to_undo):
            if record.granule is None or record.image is None:
                raise RecoveryError(f"malformed before-image {record}")
            storage.write_block(record.granule, record.image, flush=True)
            blocks += 1
    return RecoveryReport(
        committed=tuple(sorted(committed)),
        rolled_back=tuple(sorted(to_undo - in_doubt)),
        in_doubt=tuple(sorted(in_doubt)),
        blocks_restored=blocks,
    )
