"""Assembly and execution of a multi-node CARAT simulation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError
from repro.model.parameters import SiteParameters
from repro.model.types import BaseType
from repro.model.workload import WorkloadSpec
from repro.testbed.deadlock import GlobalDetector
from repro.testbed.des import Simulator, Timeout
from repro.testbed.executor import ABORTED, UserProcess
from repro.testbed.metrics import Metrics, SimulationMeasurement, \
    SiteMeasurement
from repro.testbed.node import CaratNode
from repro.testbed.transactions import Transaction

__all__ = ["SimulationConfig", "CaratSimulation", "simulate"]


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulator run.

    Parameters
    ----------
    workload, sites:
        Same objects that parameterize the analytical model.
    alpha_ms:
        One-way network delay per message (paper: negligible).
    seed:
        Root RNG seed; each user derives an independent stream.
    warmup_ms:
        Simulated time discarded before measurement starts.
    duration_ms:
        Measured simulated time.
    dm_pool_size:
        DM servers per node (fixed at start-up in CARAT).
    probe_interval_ms:
        Re-probe period for blocked transactions.  Probes consume CPU
        at every site they visit, so this trades detection latency
        against overhead; the one-second default matches the
        coarse-timer detectors of the testbed era.
    """

    workload: WorkloadSpec
    sites: dict[str, SiteParameters]
    alpha_ms: float = 0.1
    seed: int = 1
    warmup_ms: float = 120_000.0
    duration_ms: float = 1_200_000.0
    dm_pool_size: int = 32
    probe_interval_ms: float = 1000.0
    #: record committed access histories for serializability checking
    #: (memory grows with the run; meant for validation runs)
    record_history: bool = False
    #: paper §7 extension: let a coordinator overlap remote requests
    #: with its subsequent local work instead of waiting for each
    #: response (CARAT itself serializes: one active server per
    #: transaction)
    parallel_remote: bool = False
    #: optional event tracer (see :mod:`repro.testbed.tracing`)
    tracer: object | None = None
    #: optional telemetry collector (see
    #: :mod:`repro.testbed.telemetry`); when None every hook is a
    #: no-op and the RNG stream is untouched
    telemetry: object | None = None

    def __post_init__(self) -> None:
        missing = [s for s in self.workload.sites if s not in self.sites]
        if missing:
            raise ConfigurationError(f"no parameters for sites {missing}")
        if self.warmup_ms < 0 or self.duration_ms <= 0:
            raise ConfigurationError("invalid warmup/duration")


class CaratSimulation:
    """A runnable CARAT system: nodes, users, detector, metrics."""

    def __init__(self, config: SimulationConfig):
        self.config = config
        self.workload = config.workload
        self.alpha_ms = config.alpha_ms
        self.telemetry = config.telemetry
        self.sim = Simulator()
        self.metrics = Metrics()
        self.registry: dict[str, Transaction] = {}
        #: committed-transaction history (when record_history is set)
        self.history: list = []
        self.nodes: dict[str, CaratNode] = {
            name: CaratNode(self.sim, config.sites[name], self.metrics,
                            dm_pool_size=config.dm_pool_size)
            for name in self.workload.sites
        }
        self.detector = GlobalDetector(
            self.sim, self.nodes, self.registry,
            alpha_ms=config.alpha_ms,
            probe_interval_ms=config.probe_interval_ms,
        )
        self.users: list[UserProcess] = []
        for site in self.workload.sites:
            for base in BaseType:
                for index in range(self.workload.user_count(site, base)):
                    self.users.append(UserProcess(self, site, base, index))
        #: per-site cumulative Zipf CDF over granules (lazy; only
        #: built when the workload carries a Zipf exponent)
        self._zipf_cdfs: dict[str, list[float]] = {}

    def zipf_cdf(self, site: str) -> list[float]:
        """Cumulative granule-access distribution for Zipf workloads.

        Shared by every user process at *site*; deterministic (no RNG)
        so caching it cannot perturb replayability.
        """
        cached = self._zipf_cdfs.get(site)
        if cached is not None:
            return cached
        import math
        s = self.workload.zipf_s
        granules = self.nodes[site].storage.granules
        weights = [(i + 1) ** -s for i in range(granules)]
        total = math.fsum(weights)
        cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._zipf_cdfs[site] = cdf
        return cdf

    # -- cross-cutting actions -------------------------------------------------

    def trace(self, kind, txn_id: str, site: str,
              detail: str = "") -> None:
        """Record a trace event when a tracer is attached."""
        tracer = self.config.tracer
        if tracer is not None:
            tracer.record(self.sim.now, kind, txn_id, site, detail)

    def abort_blocked(self, txn_id: str, site: str) -> None:
        """Abort a transaction blocked in a lock wait at *site* (global
        deadlock victim).  Wakes the waiting driver with ABORTED."""
        node = self.nodes[site]
        wait = node.lock_wait_events.pop(txn_id, None)
        if wait is None:
            raise SimulationError(
                f"abort of {txn_id} at {site}: not in a lock wait"
            )
        from repro.testbed.tracing import TraceEventKind
        self.trace(TraceEventKind.DEADLOCK_GLOBAL, txn_id, site)
        node.locks.cancel_wait(txn_id)
        wait.fire(ABORTED)

    # -- running -----------------------------------------------------------------

    def run(self) -> SimulationMeasurement:
        """Run warm-up plus measurement window; return the measures."""
        for user in self.users:
            self.sim.spawn(user.run(), name=f"user-{user.home}-"
                                            f"{user.base.value}"
                                            f"{user.user_index}")
        self.sim.spawn(self._warmup_marker(), name="warmup")
        self._spawn_probe()
        horizon = self.config.warmup_ms + self.config.duration_ms
        self.sim.run(until=horizon)
        return self._collect()

    def _warmup_marker(self):
        yield Timeout(self.config.warmup_ms)
        self.metrics.start_window(self.sim.now)
        for node in self.nodes.values():
            node.reset_stats()

    def _spawn_probe(self) -> None:
        """Start the telemetry sampling process, if requested.

        The probe only *reads* simulator state (queue lengths,
        cumulative busy times, lock-table and journal counters) and
        draws no random numbers, so attaching it cannot perturb the
        simulated behaviour — measurements stay bit-identical with or
        without telemetry.
        """
        tele = self.telemetry
        if tele is None or not getattr(tele, "record_timeseries", False):
            return

        def probe():
            while True:
                tele.sample(self)
                yield Timeout(tele.sample_interval_ms)

        self.sim.spawn(probe(), name="telemetry-probe")

    def _collect(self) -> SimulationMeasurement:
        elapsed = self.sim.now - self.metrics.window_start
        sites: dict[str, SiteMeasurement] = {}
        for name, node in self.nodes.items():
            commits = {}
            aborts = {}
            responses = {}
            samples = {}
            records = {}
            visits = {}
            for base in BaseType:
                key = (name, base)
                commits[base] = self.metrics.commits.get(key, 0)
                aborts[base] = self.metrics.aborts.get(key, 0)
                total = self.metrics.response_sum_ms.get(key, 0.0)
                responses[base] = (total / commits[base]
                                   if commits[base] else 0.0)
                samples[base] = list(
                    self.metrics.response_samples.get(key, []))
                records[base] = self.metrics.records_sum.get(key, 0.0)
                event_names = sorted(
                    n for (s, b, n) in self.metrics.events
                    if s == name and b is base)
                if event_names and commits[base]:
                    visits[base] = {
                        n: self.metrics.events_per_commit(name, base, n)
                        for n in event_names}
            sites[name] = SiteMeasurement(
                site=name,
                elapsed_ms=elapsed,
                commits_by_type=commits,
                aborts_by_type=aborts,
                mean_response_ms_by_type=responses,
                response_samples_by_type=samples,
                records_by_type=records,
                cpu_utilization=node.cpu.utilization(elapsed),
                disk_utilization=node.disk.utilization(elapsed),
                log_disk_utilization=(
                    node.log_disk.utilization(elapsed)
                    if node.log_disk is not node.disk else 0.0),
                disk_ios=self.metrics.disk_ios.get(name, 0),
                local_deadlocks=self.metrics.deadlocks_local.get(name, 0),
                global_deadlocks=self.metrics.deadlocks_global.get(name, 0),
                lock_waits=self.metrics.lock_waits.get(name, 0),
                events_per_commit_by_name=visits,
            )
        return SimulationMeasurement(
            workload_name=self.workload.name,
            requests_per_txn=self.workload.requests_per_txn,
            seed=self.config.seed,
            sites=sites,
        )


def simulate(workload: WorkloadSpec, sites: dict[str, SiteParameters],
             **kwargs) -> SimulationMeasurement:
    """Convenience one-call API: configure and run the simulator."""
    return CaratSimulation(SimulationConfig(workload=workload,
                                            sites=sites, **kwargs)).run()


class OpenCaratSimulation(CaratSimulation):
    """Open-arrival variant: Poisson transaction sources instead of a
    fixed terminal population (validates
    :mod:`repro.model.open_solver`).

    The ``users`` populations of the workload are ignored; instead
    each (site, type) with a positive rate gets a source process that
    spawns one-shot transactions at exponential interarrival times.
    Each spawned transaction retries until commit, like the open
    model's ``N_s`` accounting.

    ``burstiness`` is the squared coefficient of variation of the
    interarrival times: 1 (the default) keeps the Poisson sources,
    larger values draw from a balanced two-phase hyperexponential
    with the same mean — the scenario DSL's knob for bursty arrivals.
    """

    def __init__(self, config: SimulationConfig,
                 arrivals_per_s: dict[str, dict[BaseType, float]],
                 burstiness: float = 1.0):
        super().__init__(config)
        if burstiness < 1.0:
            raise ConfigurationError(
                "burstiness (squared CV) must be >= 1")
        self.arrivals_per_s = arrivals_per_s
        self.burstiness = burstiness
        self.users = []        # closed terminals disabled

    def run(self) -> SimulationMeasurement:
        import random as _random
        import zlib as _zlib
        from repro.testbed.des import Fork, Timeout
        from repro.testbed.executor import UserProcess

        def source(site: str, base: BaseType, rate_per_ms: float):
            seed = _zlib.crc32(
                f"open:{self.config.seed}:{site}:{base.value}"
                .encode("ascii"))
            rng = _random.Random(seed)
            index = 0
            draw = self._interarrival_sampler(rng, rate_per_ms)

            def body():
                nonlocal index
                while True:
                    yield Timeout(draw())
                    user = UserProcess(self, site, base, index)
                    index += 1
                    yield Fork(user.run_one())

            return body()

        for site, rates in self.arrivals_per_s.items():
            for base, rate in rates.items():
                if rate > 0.0:
                    self.sim.spawn(source(site, base, rate / 1e3),
                                   name=f"src-{site}-{base.value}")
        self.sim.spawn(self._warmup_marker(), name="warmup")
        self._spawn_probe()
        horizon = self.config.warmup_ms + self.config.duration_ms
        self.sim.run(until=horizon)
        return self._collect()

    def _interarrival_sampler(self, rng, rate_per_ms: float):
        """Interarrival draw with the configured burstiness.

        ``burstiness == 1`` keeps the exponential source untouched
        (bit-identical to pre-burstiness runs).  Beyond 1 a balanced
        two-phase hyperexponential matches the mean ``1/rate`` and
        squared CV exactly: branch ``i`` has probability ``p_i`` and
        rate ``2 p_i * rate``, with ``p_1`` chosen so the second
        moment hits ``(c2 + 1) / rate^2``.
        """
        if self.burstiness == 1.0:
            return lambda: rng.expovariate(rate_per_ms)
        import math
        c2 = self.burstiness
        p1 = 0.5 * (1.0 + math.sqrt((c2 - 1.0) / (c2 + 1.0)))
        rate1 = 2.0 * p1 * rate_per_ms
        rate2 = 2.0 * (1.0 - p1) * rate_per_ms

        def draw() -> float:
            branch = rate1 if rng.random() < p1 else rate2
            return rng.expovariate(branch)

        return draw
