"""CARAT testbed simulator.

A discrete-event simulation of the CARAT distributed database testbed
(paper §2): TM/DM server processes, two-phase locking with local
wait-for-graph search and probe-based global deadlock detection,
before-image write-ahead journaling, and centralized two-phase commit.
Shares its cost tables with the analytical model so the two can be
compared like the paper's model-vs-measurement studies.
"""

from repro.testbed.batchmeans import (BatchMeansResult, batch_means,
                                      lag1_autocorrelation)
from repro.testbed.deadlock import GlobalDetector
from repro.testbed.des import Event, Fork, Process, Simulator, Timeout, Wait
from repro.testbed.locks import LockManager, LockMode, LockRequestOutcome
from repro.testbed.serializability import (AccessRecord,
                                           CommittedTransaction,
                                           SerializabilityReport,
                                           check_serializable,
                                           conflict_graph)
from repro.testbed.metrics import (Metrics, SimulationMeasurement,
                                   SiteMeasurement)
from repro.testbed.node import CaratNode
from repro.testbed.resources import CountingPool, FcfsResource, Mailbox
from repro.testbed.replication import (Estimate, ReplicatedMeasurement,
                                       run_replications)
from repro.testbed.storage import BlockStorage
from repro.testbed.system import (CaratSimulation, OpenCaratSimulation,
                                  SimulationConfig, simulate)
from repro.testbed.telemetry import (Telemetry, TimeSeriesSample,
                                     TransactionSpans)
from repro.testbed.tracing import TraceEvent, TraceEventKind, Tracer
from repro.testbed.wal import (Journal, LogRecord, RecordType,
                               RecoveryReport, recover)

__all__ = [
    "Simulator", "Event", "Timeout", "Wait", "Fork", "Process",
    "FcfsResource", "CountingPool", "Mailbox",
    "LockManager", "LockMode", "LockRequestOutcome",
    "BlockStorage", "Journal", "LogRecord", "RecordType", "recover",
    "RecoveryReport",
    "CaratNode", "Metrics", "SiteMeasurement", "SimulationMeasurement",
    "CaratSimulation", "OpenCaratSimulation", "SimulationConfig",
    "simulate",
    "GlobalDetector",
    "AccessRecord", "CommittedTransaction", "SerializabilityReport",
    "check_serializable", "conflict_graph",
    "Tracer", "TraceEvent", "TraceEventKind",
    "Telemetry", "TransactionSpans", "TimeSeriesSample",
    "Estimate", "ReplicatedMeasurement", "run_replications",
    "BatchMeansResult", "batch_means", "lag1_autocorrelation",
]
