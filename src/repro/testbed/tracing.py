"""Structured event tracing for the simulator.

A :class:`Tracer` records timestamped lifecycle events (bounded ring
buffer, so long runs cannot exhaust memory) that tests and debugging
sessions can query: everything one transaction did, every deadlock
resolution, the lock-wait episodes of a site.

Tracing is optional; when no tracer is attached the hooks are no-ops.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from dataclasses import dataclass
from collections.abc import Iterable
from typing import Any

from repro.errors import ConfigurationError

__all__ = ["TraceEventKind", "TraceEvent", "Tracer"]


class TraceEventKind(enum.Enum):
    """Lifecycle events a trace can contain."""

    BEGIN = "begin"
    REQUEST_START = "request_start"
    LOCK_WAIT = "lock_wait"
    LOCK_GRANT = "lock_grant"
    DEADLOCK_LOCAL = "deadlock_local"
    DEADLOCK_GLOBAL = "deadlock_global"
    ABORT = "abort"
    PREPARE = "prepare"
    COMMIT = "commit"


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time: float
    kind: TraceEventKind
    txn: str
    site: str
    detail: str = ""

    def format(self) -> str:
        """Human-readable single-line rendering."""
        extra = f" {self.detail}" if self.detail else ""
        return (f"{self.time / 1e3:10.3f}s {self.site:>3} "
                f"{self.kind.value:<16} {self.txn}{extra}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form, sharing the ``time``/``kind``/
        ``site`` keys with the telemetry exports so traces and probe
        data can be merged and sorted together."""
        out: dict[str, Any] = {
            "time": self.time,
            "kind": self.kind.value,
            "txn": self.txn,
            "site": self.site,
        }
        if self.detail:
            out["detail"] = self.detail
        return out


class Tracer:
    """Bounded in-memory event trace."""

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ConfigurationError("trace capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0

    def record(self, time: float, kind: TraceEventKind, txn: str,
               site: str, detail: str = "") -> None:
        """Append one event (oldest events fall off when full)."""
        if len(self._events) == self.capacity:
            self.dropped += 1
        self.recorded += 1
        self._events.append(TraceEvent(time=time, kind=kind, txn=txn,
                                       site=site, detail=detail))

    def __len__(self) -> int:
        return len(self._events)

    def events(self, txn: str | None = None,
               kind: TraceEventKind | None = None,
               site: str | None = None,
               since: float | None = None,
               until: float | None = None) -> list[TraceEvent]:
        """Events filtered by any combination of txn/kind/site and an
        inclusive ``[since, until]`` time window."""
        out = []
        for event in self._events:
            if txn is not None and event.txn != txn:
                continue
            if kind is not None and event.kind is not kind:
                continue
            if site is not None and event.site != site:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            out.append(event)
        return out

    def transaction_timeline(self, txn: str) -> list[TraceEvent]:
        """All events of one transaction, in time order."""
        return self.events(txn=txn)

    def outcomes(self, txn: str) -> list[TraceEventKind]:
        """The terminal events (COMMIT/ABORT) of one transaction."""
        terminal = (TraceEventKind.COMMIT, TraceEventKind.ABORT)
        return [e.kind for e in self.events(txn=txn)
                if e.kind in terminal]

    def dump(self, events: Iterable[TraceEvent] | None = None) -> str:
        """Render events (default: everything) as text."""
        events = self._events if events is None else events
        return "\n".join(event.format() for event in events)

    def to_jsonl(self, events: Iterable[TraceEvent] | None = None) -> str:
        """Render events (default: everything) as JSONL, one object
        per line."""
        events = self._events if events is None else events
        return "\n".join(json.dumps(event.to_dict()) for event in events)
