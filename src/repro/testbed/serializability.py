"""Conflict-serializability checking for simulated histories.

Strict two-phase locking guarantees conflict-serializable (indeed,
strict) schedules; this module *verifies* that claim on the histories
the simulator actually produced, instead of trusting the lock manager.

The check is the textbook one: build the precedence graph over
committed transactions — an edge ``T1 -> T2`` whenever they access a
common (site, granule) in conflicting modes and ``T1``'s access
happened first — and assert acyclicity.  A cycle is a serializability
violation and is reported with the offending transactions.

Enable history recording with ``SimulationConfig(record_history=True)``
(off by default: long runs would accumulate memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.testbed.locks import LockMode

__all__ = ["AccessRecord", "CommittedTransaction",
           "SerializabilityReport", "conflict_graph",
           "check_serializable"]


@dataclass(frozen=True)
class AccessRecord:
    """One granule access by a transaction."""

    site: str
    granule: int
    mode: LockMode
    acquired_at: float

    def conflicts_with(self, other: AccessRecord) -> bool:
        """Same item, at least one exclusive."""
        return (self.site == other.site
                and self.granule == other.granule
                and not self.mode.compatible(other.mode))


@dataclass(frozen=True)
class CommittedTransaction:
    """A committed transaction's access history."""

    txn_id: str
    committed_at: float
    accesses: tuple[AccessRecord, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class SerializabilityReport:
    """Outcome of :func:`check_serializable`."""

    serializable: bool
    transactions: int
    conflict_edges: int
    cycle: tuple[str, ...] = ()
    #: one witness serial order when serializable (topological)
    serial_order: tuple[str, ...] = ()


def conflict_graph(
        history: list[CommittedTransaction]) -> nx.DiGraph:
    """Precedence graph over a committed history.

    Edges point from the transaction whose conflicting access came
    first to the one whose access came later, which under 2PL is also
    the lock-release order.
    """
    graph = nx.DiGraph()
    for txn in history:
        graph.add_node(txn.txn_id)
    # Bucket accesses per item so the pairwise scan stays local.
    by_item: dict[tuple[str, int], list[tuple[AccessRecord, str]]] = {}
    for txn in history:
        for access in txn.accesses:
            by_item.setdefault((access.site, access.granule), []).append(
                (access, txn.txn_id))
    for accesses in by_item.values():
        accesses.sort(key=lambda pair: pair[0].acquired_at)
        for i, (first, first_txn) in enumerate(accesses):
            for later, later_txn in accesses[i + 1:]:
                if first_txn == later_txn:
                    continue
                if first.conflicts_with(later):
                    graph.add_edge(first_txn, later_txn)
    return graph


def check_serializable(
        history: list[CommittedTransaction]) -> SerializabilityReport:
    """Check a committed history for conflict-serializability."""
    graph = conflict_graph(history)
    try:
        order = tuple(nx.topological_sort(graph))
        return SerializabilityReport(
            serializable=True,
            transactions=graph.number_of_nodes(),
            conflict_edges=graph.number_of_edges(),
            serial_order=order,
        )
    except nx.NetworkXUnfeasible:
        cycle_edges = nx.find_cycle(graph)
        cycle = tuple(edge[0] for edge in cycle_edges)
        return SerializabilityReport(
            serializable=False,
            transactions=graph.number_of_nodes(),
            conflict_edges=graph.number_of_edges(),
            cycle=cycle,
        )
