"""Runtime state of one (possibly distributed) transaction."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.types import BaseType
from repro.testbed.locks import LockMode

__all__ = ["SiteTxnState", "Transaction"]


@dataclass
class SiteTxnState:
    """What a transaction has done at one site so far."""

    #: granules locked at the site (mirror of the lock table, kept for
    #: the skip-if-held fast path)
    held: set[int] = field(default_factory=set)
    #: granule -> before image, for rollback bookkeeping
    before_images: dict[int, tuple[int, ...]] = field(default_factory=dict)
    #: whether a DM server is allocated at the site
    dm_allocated: bool = False


@dataclass
class Transaction:
    """One execution attempt of a user transaction."""

    txn_id: str
    base: BaseType
    home: str
    #: every site the transaction may touch (home first)
    sites: tuple[str, ...]
    site_state: dict[str, SiteTxnState] = field(default_factory=dict)
    #: site where the transaction is currently blocked in a lock wait
    blocked_at: str | None = None
    aborted: bool = False
    finished: bool = False
    #: (site, granule, mode, acquired_at) tuples when the system
    #: records history for serializability checking
    access_log: list[tuple[str, int, object, float]] = \
        field(default_factory=list)

    def __post_init__(self) -> None:
        for site in self.sites:
            self.site_state.setdefault(site, SiteTxnState())

    @property
    def lock_mode(self) -> LockMode:
        """Update transactions lock exclusively, readers share."""
        return (LockMode.EXCLUSIVE if self.base.is_update
                else LockMode.SHARED)

    @property
    def is_distributed(self) -> bool:
        return len(self.sites) > 1

    def state(self, site: str) -> SiteTxnState:
        return self.site_state[site]

    def touched_sites(self) -> list[str]:
        """Sites where the transaction holds locks or made updates."""
        return [s for s, st in self.site_state.items()
                if st.held or st.before_images or st.dm_allocated]
