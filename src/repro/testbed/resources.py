"""Shared-resource primitives for the testbed simulator.

:class:`FcfsResource` models a single server with a FIFO queue (the CPU
and disks of a CARAT node).  :class:`Mailbox` is an unbounded FIFO
message queue with blocking receive (the TM/DM server message loops).
Both accumulate the statistics the experiments report (busy time for
utilizations, completion counts for I/O rates).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any

from repro.errors import SimulationError
from repro.testbed.des import Event, Simulator, Timeout, Wait

__all__ = ["FcfsResource", "CountingPool", "Mailbox"]


class FcfsResource:
    """A single exponential-or-deterministic server with a FIFO queue.

    Processes call ``yield from resource.use(duration)`` to queue for
    the server, hold it for ``duration`` time units, and release it.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self._busy = False
        self._queue: deque[Event] = deque()
        # Statistics.
        self.busy_time = 0.0
        self.completions = 0
        self._busy_since = 0.0
        self._stats_start = 0.0

    def reset_stats(self) -> None:
        """Restart statistics collection at the current time (used to
        discard the warm-up period)."""
        self.busy_time = 0.0
        self.completions = 0
        self._stats_start = self.sim.now
        if self._busy:
            self._busy_since = self.sim.now

    def use(self, duration: float) -> Generator:
        """Queue for the server, hold it for *duration*, release it."""
        if duration < 0:
            raise SimulationError(f"negative service time {duration}")
        grant = self._request()
        yield Wait(grant)
        yield Timeout(duration)
        self._release()

    def acquire(self) -> Generator:
        """Queue for the server and hold it until :meth:`release`.

        For critical sections that interleave other waits while holding
        the resource (e.g. the TM server force-writing a log record).
        """
        grant = self._request()
        yield Wait(grant)

    def release(self) -> None:
        """Release a hold taken with :meth:`acquire`."""
        self._release()

    def _request(self) -> Event:
        grant = self.sim.event()
        if not self._busy and not self._queue:
            self._busy = True
            self._busy_since = self.sim.now
            grant.fire()
        else:
            self._queue.append(grant)
        return grant

    def _release(self) -> None:
        if not self._busy:
            raise SimulationError(f"release of idle resource {self.name}")
        self.completions += 1
        if self._queue:
            # Hand over directly; the server stays busy.
            grant = self._queue.popleft()
            grant.fire()
        else:
            self._busy = False
            self.busy_time += self.sim.now - self._busy_since

    def cumulative_busy_ms(self) -> float:
        """Busy time since the last stats reset, including the
        in-progress service period (telemetry probes diff successive
        readings for windowed utilizations)."""
        busy = self.busy_time
        if self._busy:
            busy += self.sim.now - self._busy_since
        return busy

    def utilization(self, elapsed: float | None = None) -> float:
        """Fraction of time busy since the last stats reset."""
        if elapsed is None:
            elapsed = self.sim.now - self._stats_start
        if elapsed <= 0:
            return 0.0
        return self.cumulative_busy_ms() / elapsed

    @property
    def queue_length(self) -> int:
        """Customers waiting (excluding the one in service)."""
        return len(self._queue)


class CountingPool:
    """A pool of interchangeable servers (the DM server pool).

    ``acquire`` blocks while the pool is exhausted; FIFO hand-off on
    release.
    """

    def __init__(self, sim: Simulator, name: str, size: int):
        if size < 1:
            raise SimulationError(f"pool {name} needs >= 1 server")
        self.sim = sim
        self.name = name
        self.size = size
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        self.peak_in_use = 0
        self.wait_count = 0

    def acquire(self) -> Generator:
        """Take one server; blocks while none are free."""
        if self._in_use < self.size and not self._waiters:
            self._grant()
            yield Timeout(0.0)
            return
        self.wait_count += 1
        waiter = self.sim.event()
        self._waiters.append(waiter)
        yield Wait(waiter)

    def _grant(self) -> None:
        self._in_use += 1
        self.peak_in_use = max(self.peak_in_use, self._in_use)

    def release(self) -> None:
        """Return one server; wakes the oldest waiter, if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of empty pool {self.name}")
        self._in_use -= 1
        if self._waiters:
            self._grant()
            self._waiters.popleft().fire()

    @property
    def available(self) -> int:
        """Free servers right now."""
        return self.size - self._in_use

    @property
    def in_use(self) -> int:
        """Servers currently allocated."""
        return self._in_use


class Mailbox:
    """Unbounded FIFO message queue with blocking receive."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self._messages: deque[Any] = deque()
        self._receivers: deque[Event] = deque()
        self.delivered = 0

    def put(self, message: Any) -> None:
        """Enqueue a message; wakes one blocked receiver, if any."""
        self.delivered += 1
        if self._receivers:
            receiver = self._receivers.popleft()
            receiver.fire(message)
        else:
            self._messages.append(message)

    def get(self) -> Generator:
        """Blocking receive: ``msg = yield from mailbox.get()``."""
        if self._messages:
            # Yield a zero timeout so receive always costs one
            # scheduling step; keeps FIFO fairness among receivers.
            message = self._messages.popleft()
            yield Timeout(0.0)
            return message
        receiver = self.sim.event()
        self._receivers.append(receiver)
        message = yield Wait(receiver)
        return message

    def __len__(self) -> int:
        return len(self._messages)
