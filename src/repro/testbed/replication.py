"""Replicated simulation runs with confidence intervals.

A single DES run is one sample path; production simulation methodology
reports means with confidence intervals over independent replications
(distinct seeds).  This module runs R replications of a configuration
and summarizes the headline measures with Student-t intervals
(scipy.stats), which the experiments can use to say *how much* of the
model-vs-simulator gap is sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError
from repro.obs.spans import span
from repro.testbed.system import CaratSimulation, SimulationConfig

__all__ = ["Estimate", "ReplicatedMeasurement", "run_replications"]


@dataclass(frozen=True)
class Estimate:
    """Mean with a two-sided Student-t confidence interval."""

    mean: float
    half_width: float
    replications: int
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when *value* lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (0 when mean is 0)."""
        if self.mean == 0.0:
            return 0.0
        return abs(self.half_width / self.mean)


def _estimate(samples: list[float], confidence: float) -> Estimate:
    n = len(samples)
    mean = float(np.mean(samples))
    if n < 2:
        return Estimate(mean=mean, half_width=float("inf"),
                        replications=n, confidence=confidence)
    sem = float(np.std(samples, ddof=1)) / np.sqrt(n)
    t = float(stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return Estimate(mean=mean, half_width=t * sem, replications=n,
                    confidence=confidence)


@dataclass(frozen=True)
class ReplicatedMeasurement:
    """Per-site interval estimates over R replications."""

    replications: int
    confidence: float
    throughput: dict[str, Estimate]
    cpu_utilization: dict[str, Estimate]
    dio_rate: dict[str, Estimate]

    def site_throughput(self, site: str) -> Estimate:
        return self.throughput[site]


def run_replications(
    config: SimulationConfig,
    replications: int = 5,
    confidence: float = 0.95,
) -> ReplicatedMeasurement:
    """Run *replications* independent copies of *config*.

    Replication ``i`` uses seed ``config.seed + i``; everything else is
    shared.  Returns interval estimates for TR-XPUT, Total-CPU and
    Total-DIO at every site.
    """
    if replications < 1:
        raise ConfigurationError("need at least one replication")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    xput: dict[str, list[float]] = {}
    cpu: dict[str, list[float]] = {}
    dio: dict[str, list[float]] = {}
    for i in range(replications):
        run_config = replace(config, seed=config.seed + i)
        with span("testbed.replication_run", index=i,
                  seed=run_config.seed):
            measurement = CaratSimulation(run_config).run()
        for name, site in measurement.sites.items():
            xput.setdefault(name, []).append(
                site.transaction_throughput_per_s)
            cpu.setdefault(name, []).append(site.cpu_utilization)
            dio.setdefault(name, []).append(site.dio_rate_per_s)
    return ReplicatedMeasurement(
        replications=replications,
        confidence=confidence,
        throughput={s: _estimate(v, confidence)
                    for s, v in xput.items()},
        cpu_utilization={s: _estimate(v, confidence)
                         for s, v in cpu.items()},
        dio_rate={s: _estimate(v, confidence) for s, v in dio.items()},
    )
