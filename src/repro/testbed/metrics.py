"""Measurement collection for the testbed simulator.

Mirrors the measures the paper reports (TR-XPUT, Total-CPU, Total-DIO,
per-type throughput, response times, abort counts) with a warm-up
window that is discarded before statistics start.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.model.types import BaseType

__all__ = ["Metrics", "SiteMeasurement", "SimulationMeasurement"]


class Metrics:
    """Mutable counters, keyed by site and base transaction type."""

    def __init__(self) -> None:
        self.window_start = 0.0
        self.commits: dict[tuple[str, BaseType], int] = defaultdict(int)
        self.aborts: dict[tuple[str, BaseType], int] = defaultdict(int)
        self.response_sum_ms: dict[tuple[str, BaseType], float] = \
            defaultdict(float)
        #: per-commit response observations, in completion order (for
        #: batch-means analysis)
        self.response_samples: dict[tuple[str, BaseType], list[float]] \
            = defaultdict(list)
        self.records_sum: dict[tuple[str, BaseType], float] = \
            defaultdict(float)
        self.disk_ios: dict[str, int] = defaultdict(int)
        self.deadlocks_local: dict[str, int] = defaultdict(int)
        self.deadlocks_global: dict[str, int] = defaultdict(int)
        self.lock_waits: dict[str, int] = defaultdict(int)
        #: generic per-(site, base, event-name) counters, used to
        #: validate the model's visit counts against the simulator
        #: (e.g. "tm_msg", "lock_request", "granule_access")
        self.events: dict[tuple[str, BaseType, str], int] = \
            defaultdict(int)
        self.collecting = False

    def start_window(self, now: float) -> None:
        """Discard everything so far; measurements start now."""
        self.window_start = now
        self.commits.clear()
        self.aborts.clear()
        self.response_sum_ms.clear()
        self.response_samples.clear()
        self.records_sum.clear()
        self.disk_ios.clear()
        self.deadlocks_local.clear()
        self.deadlocks_global.clear()
        self.lock_waits.clear()
        self.events.clear()
        self.collecting = True

    # -- event hooks ---------------------------------------------------------

    def commit(self, site: str, base: BaseType, response_ms: float,
               records: float) -> None:
        if not self.collecting:
            return
        self.commits[(site, base)] += 1
        self.response_sum_ms[(site, base)] += response_ms
        self.response_samples[(site, base)].append(response_ms)
        self.records_sum[(site, base)] += records

    def abort(self, site: str, base: BaseType) -> None:
        if self.collecting:
            self.aborts[(site, base)] += 1

    def disk_io(self, site: str, count: int = 1) -> None:
        if self.collecting:
            self.disk_ios[site] += count

    def local_deadlock(self, site: str) -> None:
        if self.collecting:
            self.deadlocks_local[site] += 1

    def global_deadlock(self, site: str) -> None:
        if self.collecting:
            self.deadlocks_global[site] += 1

    def lock_wait(self, site: str) -> None:
        if self.collecting:
            self.lock_waits[site] += 1

    def event(self, site: str, base: BaseType, name: str,
              count: int = 1) -> None:
        """Bump a generic visit counter (visit-count validation)."""
        if self.collecting:
            self.events[(site, base, name)] += count

    def events_per_commit(self, site: str, base: BaseType,
                          name: str) -> float:
        """Observed visits per committed transaction of one type —
        directly comparable with the model's ``N_s * V_c``."""
        commits = self.commits.get((site, base), 0)
        if commits == 0:
            return 0.0
        return self.events.get((site, base, name), 0) / commits


@dataclass(frozen=True)
class SiteMeasurement:
    """Measured performance of one site over the collection window."""

    site: str
    elapsed_ms: float
    commits_by_type: dict[BaseType, int]
    aborts_by_type: dict[BaseType, int]
    mean_response_ms_by_type: dict[BaseType, float]
    #: per-commit response observations in completion order
    response_samples_by_type: dict[BaseType, list[float]]
    records_by_type: dict[BaseType, float]
    cpu_utilization: float
    disk_utilization: float
    log_disk_utilization: float
    disk_ios: int
    local_deadlocks: int
    global_deadlocks: int
    lock_waits: int
    #: observed visit counts per commit, by event name (e.g. "tm_msg",
    #: "lock_request", "granule_access") — comparable with the model's
    #: ``N_s * V_c`` visit ratios; empty for types that never committed
    events_per_commit_by_name: dict[BaseType, dict[str, float]] = \
        field(default_factory=dict)

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ms / 1e3

    @property
    def transaction_throughput_per_s(self) -> float:
        """TR-XPUT — commits/s of transactions originating at the site."""
        return sum(self.commits_by_type.values()) / self.elapsed_s

    @property
    def record_throughput_per_s(self) -> float:
        """Normalized throughput in records/s (paper Figures 5, 8)."""
        return sum(self.records_by_type.values()) / self.elapsed_s

    @property
    def dio_rate_per_s(self) -> float:
        """Total-DIO — physical disk I/Os per second at the site."""
        return self.disk_ios / self.elapsed_s

    def throughput_per_s(self, base: BaseType) -> float:
        """Per-type commit rate (paper Table 5)."""
        return self.commits_by_type.get(base, 0) / self.elapsed_s

    def response_percentile_ms(self, base: BaseType,
                               percentile: float) -> float:
        """Response-time percentile (0..100) for one type; 0 when the
        type never committed in the window."""
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile {percentile} out of range")
        samples = sorted(self.response_samples_by_type.get(base, []))
        if not samples:
            return 0.0
        rank = percentile / 100.0 * (len(samples) - 1)
        low = int(rank)
        high = min(low + 1, len(samples) - 1)
        frac = rank - low
        return samples[low] * (1.0 - frac) + samples[high] * frac

    def abort_rate(self, base: BaseType) -> float:
        """Aborted submissions per commit for one type."""
        commits = self.commits_by_type.get(base, 0)
        if commits == 0:
            return 0.0
        return self.aborts_by_type.get(base, 0) / commits


@dataclass(frozen=True)
class SimulationMeasurement:
    """Full simulator output for one run."""

    workload_name: str
    requests_per_txn: int
    seed: int
    sites: dict[str, SiteMeasurement] = field(default_factory=dict)

    def site(self, name: str) -> SiteMeasurement:
        return self.sites[name]

    def total_commits(self) -> int:
        return sum(sum(s.commits_by_type.values())
                   for s in self.sites.values())
