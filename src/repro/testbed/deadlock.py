"""Global deadlock detection via edge-chasing probes (paper §2).

CARAT detects local deadlocks by searching the site's transaction
wait-for graph (done synchronously inside the lock manager,
:mod:`repro.testbed.locks`) and global deadlocks with a variant of the
Chandy–Misra–Haas probe algorithm [CHAN83].

Implementation: when a transaction blocks, a *prober* process starts.
Periodically, while the transaction stays blocked, it chases the
wait-for edges: from the blocked transaction to the holders it waits
on, from each holder to the sites where that (global) transaction has
agents, and onward through any lock wait those agents are in.  Each
site examined costs one lock-request's worth of CPU there, and each
inter-site hop costs the network delay, so detection latency and its
resource usage are part of the simulation.  If a chase returns to the
initiator, the initiator is the victim (same policy as local
detection: the transaction whose wait closes the cycle aborts).

Races are handled the way the real algorithm handles them: the victim
is only aborted if it is *still* blocked when the probe completes, so
stale probes are harmless.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import TYPE_CHECKING

from repro.testbed.des import Simulator, Timeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.testbed.node import CaratNode
    from repro.testbed.transactions import Transaction

__all__ = ["GlobalDetector"]


class GlobalDetector:
    """Probe-based global deadlock detector shared by all sites."""

    def __init__(
        self,
        sim: Simulator,
        nodes: dict[str, "CaratNode"],
        registry: dict[str, "Transaction"],
        alpha_ms: float = 0.1,
        probe_cpu_ms: float = 2.2,
        probe_interval_ms: float = 250.0,
    ):
        self.sim = sim
        self.nodes = nodes
        self.registry = registry
        self.alpha_ms = alpha_ms
        self.probe_cpu_ms = probe_cpu_ms
        self.probe_interval_ms = probe_interval_ms
        self.probes_sent = 0
        self.deadlocks_found = 0

    def prober(self, txn_id: str, blocked_node: CaratNode,
               abort_victim: Callable[[], None]) -> Generator:
        """Process body watching one blocked transaction.

        Re-probes every ``probe_interval_ms`` until the transaction is
        granted, aborted, or found deadlocked (then ``abort_victim``
        is invoked).
        """
        while True:
            yield Timeout(self.probe_interval_ms)
            txn = self.registry.get(txn_id)
            if txn is None or txn.finished or txn.aborted:
                return
            if not blocked_node.locks.is_blocked(txn_id):
                return
            deadlocked = yield from self._chase(txn_id, blocked_node)
            if not deadlocked:
                continue
            # Re-validate: the world may have moved while we probed.
            if (blocked_node.locks.is_blocked(txn_id)
                    and not txn.aborted and not txn.finished):
                self.deadlocks_found += 1
                blocked_node.metrics.global_deadlock(blocked_node.name)
                abort_victim()
            return

    def _chase(self, initiator: str,
               start_node: CaratNode) -> Generator:
        """One edge chase; returns True when a cycle through the
        initiator exists (only cycles spanning >1 site reach here —
        single-site cycles are refused synchronously by the lock
        manager)."""
        visited: set[str] = {initiator}
        frontier = list(start_node.locks.blockers(initiator))
        current_site = start_node.name
        while frontier:
            txn_id = frontier.pop()
            if txn_id == initiator:
                return True
            if txn_id in visited:
                continue
            visited.add(txn_id)
            txn = self.registry.get(txn_id)
            if txn is None:
                continue
            # Visit each site where this transaction has agents and
            # collect who those agents wait for.  Sites where it is
            # merely *waiting* (holding nothing yet) count too; the
            # lock tables are the authoritative source, which stays
            # correct even when the parallel-remote extension lets a
            # transaction wait at two sites at once.
            sites = txn.touched_sites()
            for name, node in self.nodes.items():
                if name not in sites and node.locks.is_blocked(txn_id):
                    sites.append(name)
            for site in sites:
                node = self.nodes[site]
                if site != current_site:
                    yield Timeout(self.alpha_ms)
                    current_site = site
                self.probes_sent += 1
                yield from node.cpu.use(self.probe_cpu_ms)
                for blocker in node.locks.blockers(txn_id):
                    if blocker == initiator:
                        return True
                    if blocker not in visited:
                        frontier.append(blocker)
        return False
