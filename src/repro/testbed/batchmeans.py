"""Batch-means analysis for single-run confidence intervals.

Replications (:mod:`repro.testbed.replication`) pay the warm-up cost
once per sample; the batch-means method pays it once: a single long
run's observation stream is split into contiguous batches whose means
are treated as (approximately independent) samples.  The classic lag-1
autocorrelation check warns when batches are too short to decorrelate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError

__all__ = ["BatchMeansResult", "batch_means", "lag1_autocorrelation"]


def lag1_autocorrelation(values: list[float]) -> float:
    """Lag-1 autocorrelation of a series (0 for length < 3)."""
    if len(values) < 3:
        return 0.0
    x = np.asarray(values, dtype=float)
    x = x - x.mean()
    denominator = float(np.dot(x, x))
    if denominator == 0.0:
        return 0.0
    return float(np.dot(x[:-1], x[1:]) / denominator)


@dataclass(frozen=True)
class BatchMeansResult:
    """Mean, CI and diagnostics from a batch-means analysis."""

    mean: float
    half_width: float
    batches: int
    batch_size: int
    confidence: float
    batch_autocorrelation: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def reliable(self) -> bool:
        """Batch means should be uncorrelated; under independence the
        lag-1 estimate over k batches has standard error ~1/sqrt(k),
        so flag anything beyond two standard errors."""
        return abs(self.batch_autocorrelation) \
            < 2.0 / max(1.0, self.batches) ** 0.5


def batch_means(
    observations: list[float],
    batches: int = 10,
    confidence: float = 0.95,
) -> BatchMeansResult:
    """Batch-means interval estimate over an observation stream.

    Parameters
    ----------
    observations:
        Raw per-transaction observations (e.g. response times) in the
        order they completed, warm-up already discarded.
    batches:
        Number of contiguous batches (>= 2); trailing observations
        that do not fill a batch are dropped.
    """
    if batches < 2:
        raise ConfigurationError("need at least two batches")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    size = len(observations) // batches
    if size < 1:
        raise ConfigurationError(
            f"{len(observations)} observations cannot fill "
            f"{batches} batches")
    means = [float(np.mean(observations[i * size:(i + 1) * size]))
             for i in range(batches)]
    grand = float(np.mean(means))
    sem = float(np.std(means, ddof=1)) / np.sqrt(batches)
    t = float(stats.t.ppf(0.5 + confidence / 2.0, df=batches - 1))
    return BatchMeansResult(
        mean=grand,
        half_width=t * sem,
        batches=batches,
        batch_size=size,
        confidence=confidence,
        batch_autocorrelation=lag1_autocorrelation(means),
    )
