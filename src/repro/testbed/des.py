"""Discrete-event simulation kernel.

A minimal, deterministic process-oriented DES (simpy is not available
offline, so this is built from scratch).  Processes are Python
generators that ``yield`` *commands*:

``Timeout(delay)``
    Suspend for ``delay`` time units.
``Wait(event)``
    Suspend until the :class:`Event` fires; the event's payload is the
    value of the ``yield`` expression.
``Fork(generator)``
    Start a child process immediately (the parent keeps running) and
    receive its :class:`Process` handle.

The kernel is deterministic: simultaneous events fire in scheduling
order (a monotonically increasing sequence number breaks time ties).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from collections.abc import Generator, Iterable
from typing import Any

from repro.errors import SimulationError

__all__ = ["Event", "Timeout", "Wait", "Fork", "Process", "Simulator"]


class Event:
    """A one-shot event processes can wait on.

    An event may be fired with an optional payload; every waiter is
    resumed with that payload.  Waiting on an already-fired event
    resumes immediately.
    """

    __slots__ = ("_sim", "fired", "payload", "_waiters")

    def __init__(self, sim: Simulator):
        self._sim = sim
        self.fired = False
        self.payload: Any = None
        self._waiters: list[Process] = []

    def fire(self, payload: Any = None) -> None:
        """Fire the event, waking every waiter at the current time."""
        if self.fired:
            raise SimulationError("event fired twice")
        self.fired = True
        self.payload = payload
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._sim._schedule(self._sim.now, process, payload)

    def add_waiter(self, process: Process) -> None:
        if self.fired:
            self._sim._schedule(self._sim.now, process, self.payload)
        else:
            self._waiters.append(process)


@dataclass(frozen=True)
class Timeout:
    """Yieldable: suspend the process for ``delay`` time units."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout {self.delay}")


@dataclass(frozen=True)
class Wait:
    """Yieldable: suspend until ``event`` fires."""

    event: Event


@dataclass(frozen=True)
class Fork:
    """Yieldable: start a child process; resumes immediately with its
    :class:`Process` handle."""

    generator: Generator


class Process:
    """Handle for a running simulation process."""

    __slots__ = ("generator", "name", "done", "result", "completion")

    def __init__(self, sim: Simulator, generator: Generator,
                 name: str = ""):
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self.completion = Event(sim)


@dataclass(order=True)
class _Scheduled:
    time: float
    seq: int
    process: Process = field(compare=False)
    payload: Any = field(compare=False, default=None)


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.spawn(my_process(sim))
        sim.run(until=100_000.0)
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[_Scheduled] = []
        self._seq = 0
        self._steps = 0

    # -- process management ------------------------------------------------

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Register a new process and schedule its first step now."""
        process = Process(self, generator, name)
        self._schedule(self.now, process, None)
        return process

    def event(self) -> Event:
        """Create a fresh one-shot event."""
        return Event(self)

    def _schedule(self, time: float, process: Process,
                  payload: Any) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past ({time} < {self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, _Scheduled(time, self._seq, process,
                                              payload))

    # -- main loop ----------------------------------------------------------

    def run(self, until: float | None = None,
            max_steps: int | None = None) -> None:
        """Run until the horizon, event exhaustion, or a step budget.

        Parameters
        ----------
        until:
            Simulation-time horizon; events scheduled beyond it stay
            queued (so a subsequent ``run`` can continue).
        max_steps:
            Safety budget on processed events;
            :class:`~repro.errors.SimulationError` when exceeded.
        """
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.now = until
                return
            item = heapq.heappop(self._heap)
            self.now = item.time
            self._steps += 1
            if max_steps is not None and self._steps > max_steps:
                raise SimulationError(
                    f"simulation exceeded {max_steps} steps"
                )
            self._step(item.process, item.payload)
        if until is not None:
            self.now = until

    def _step(self, process: Process, payload: Any) -> None:
        if process.done:
            return
        try:
            command = process.generator.send(payload)
        except StopIteration as stop:
            process.done = True
            process.result = stop.value
            process.completion.fire(stop.value)
            return
        while True:
            if isinstance(command, Timeout):
                self._schedule(self.now + command.delay, process, None)
                return
            if isinstance(command, Wait):
                command.event.add_waiter(process)
                return
            if isinstance(command, Fork):
                child = self.spawn(command.generator)
                try:
                    command = process.generator.send(child)
                except StopIteration as stop:
                    process.done = True
                    process.result = stop.value
                    process.completion.fire(stop.value)
                    return
                continue
            raise SimulationError(
                f"process {process.name!r} yielded {command!r}; expected "
                f"Timeout, Wait, or Fork"
            )


def run_all(sim: Simulator, generators: Iterable[Generator],
            until: float) -> None:
    """Spawn several processes and run the simulation to a horizon."""
    for generator in generators:
        sim.spawn(generator)
    sim.run(until=until)
