"""Two-phase-locking lock manager with FIFO queueing (paper §2).

Granularity is one database granule (disk block).  Read-only
transactions take shared (S) locks, update transactions exclusive (X)
locks — matching the paper's workload, where an update transaction
updates every record it touches.

Grant policy is strict FIFO: a request waits if it is incompatible with
the current holders *or* any earlier waiter, which prevents reader
starvation and matches a conventional lock manager.

The lock table doubles as the local wait-for graph: a blocked
transaction's outgoing edges are the current conflicting holders of the
granule it wants, discovered on demand (no stale edge bookkeeping).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable

from repro.errors import SimulationError

__all__ = ["LockMode", "LockRequestOutcome", "LockManager"]


class LockMode(enum.Enum):
    """Shared or exclusive granule lock."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible(self, other: LockMode) -> bool:
        """S/S is the only compatible pairing."""
        return self is LockMode.SHARED and other is LockMode.SHARED


class LockRequestOutcome(enum.Enum):
    """Result of a lock request."""

    GRANTED = "granted"          #: immediately granted (or already held)
    BLOCKED = "blocked"          #: queued; wait for the grant callback
    DEADLOCK = "deadlock"        #: request would close a local cycle


@dataclass
class _Waiter:
    txn: str
    mode: LockMode
    grant: Callable[[], None]


@dataclass
class _Lock:
    holders: dict[str, LockMode] = field(default_factory=dict)
    queue: deque[_Waiter] = field(default_factory=deque)


class LockManager:
    """Lock table for one site."""

    def __init__(self, site: str):
        self.site = site
        self._locks: dict[int, _Lock] = {}
        #: granule a blocked transaction is waiting for
        self._waiting_for: dict[str, tuple[int, LockMode]] = {}
        # Statistics.
        self.requests = 0
        self.blocks = 0
        self.local_deadlocks = 0

    # -- queries -------------------------------------------------------------

    def holds(self, txn: str, granule: int) -> bool:
        """True when *txn* already holds a lock on *granule*."""
        lock = self._locks.get(granule)
        return bool(lock and txn in lock.holders)

    def held_granules(self, txn: str) -> list[int]:
        """Granules currently locked by *txn*."""
        return [g for g, lock in self._locks.items() if txn in lock.holders]

    def is_blocked(self, txn: str) -> bool:
        """True when *txn* is queued for a lock at this site."""
        return txn in self._waiting_for

    def blockers(self, txn: str) -> set[str]:
        """Transactions a blocked *txn* is waiting on (its WFG edges):
        conflicting holders plus incompatible earlier waiters."""
        waiting = self._waiting_for.get(txn)
        if waiting is None:
            return set()
        granule, mode = waiting
        lock = self._locks.get(granule)
        if lock is None:
            return set()
        out = {holder for holder, held in lock.holders.items()
               if holder != txn and not mode.compatible(held)}
        for waiter in lock.queue:
            if waiter.txn == txn:
                break
            if not mode.compatible(waiter.mode):
                out.add(waiter.txn)
        return out

    # -- the protocol ----------------------------------------------------------

    def request(self, txn: str, granule: int, mode: LockMode,
                grant: Callable[[], None]) -> LockRequestOutcome:
        """Request a lock; FIFO queue on conflict.

        Parameters
        ----------
        txn:
            Global transaction id.
        granule:
            Granule number.
        mode:
            Requested mode.  Upgrades (S held, X requested) are
            rejected as a :class:`~repro.errors.SimulationError` —
            the paper's workload never mixes modes in one transaction.
        grant:
            Callback invoked when a *queued* request is finally
            granted (immediate grants just return GRANTED).

        Returns
        -------
        LockRequestOutcome
            GRANTED, BLOCKED, or DEADLOCK when queueing this request
            would close a cycle in the local wait-for graph (the
            requester is the victim and is *not* queued).
        """
        self.requests += 1
        lock = self._locks.setdefault(granule, _Lock())
        held = lock.holders.get(txn)
        if held is not None:
            if held is mode or held is LockMode.EXCLUSIVE:
                return LockRequestOutcome.GRANTED
            raise SimulationError(
                f"{txn} attempts lock upgrade on granule {granule}"
            )
        if self._grantable(lock, mode):
            lock.holders[txn] = mode
            return LockRequestOutcome.GRANTED

        # Would queueing close a local cycle?  Probe the wait-for graph
        # before enqueueing (victim = the requester, as in CARAT).
        self.blocks += 1
        if self._closes_cycle(txn, lock, mode):
            self.local_deadlocks += 1
            return LockRequestOutcome.DEADLOCK
        lock.queue.append(_Waiter(txn, mode, grant))
        self._waiting_for[txn] = (granule, mode)
        return LockRequestOutcome.BLOCKED

    def _grantable(self, lock: _Lock, mode: LockMode) -> bool:
        if lock.queue:
            return False
        return all(mode.compatible(held) for held in lock.holders.values())

    def _closes_cycle(self, txn: str, lock: _Lock,
                      mode: LockMode) -> bool:
        """DFS over the local WFG from the would-be blockers of *txn*."""
        start = {holder for holder, held in lock.holders.items()
                 if not mode.compatible(held)}
        for waiter in lock.queue:
            if not mode.compatible(waiter.mode):
                start.add(waiter.txn)
        seen: set[str] = set()
        stack = list(start)
        while stack:
            current = stack.pop()
            if current == txn:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.blockers(current))
        return False

    def cancel_wait(self, txn: str) -> None:
        """Remove a queued request (the waiter was aborted remotely)."""
        waiting = self._waiting_for.pop(txn, None)
        if waiting is None:
            return
        granule, _mode = waiting
        lock = self._locks.get(granule)
        if lock is None:
            return
        lock.queue = deque(w for w in lock.queue if w.txn != txn)
        self._grant_from_queue(granule, lock)

    def release_all(self, txn: str) -> int:
        """Release every lock held by *txn*; returns the count."""
        if txn in self._waiting_for:
            self.cancel_wait(txn)
        released = 0
        for granule in list(self._locks):
            lock = self._locks[granule]
            if txn in lock.holders:
                del lock.holders[txn]
                released += 1
                self._grant_from_queue(granule, lock)
            if not lock.holders and not lock.queue:
                del self._locks[granule]
        return released

    def _grant_from_queue(self, granule: int, lock: _Lock) -> None:
        """Grant from the queue head while compatible (FIFO batching:
        a run of shared requests is granted together)."""
        while lock.queue:
            head = lock.queue[0]
            compatible = all(head.mode.compatible(held)
                             for held in lock.holders.values())
            if not compatible:
                return
            lock.queue.popleft()
            lock.holders[head.txn] = head.mode
            self._waiting_for.pop(head.txn, None)
            head.grant()

    # -- introspection for tests and the probe service -----------------------

    def waiting_transactions(self) -> Iterable[str]:
        """Transactions currently blocked at this site."""
        return list(self._waiting_for)

    def waiting_count(self) -> int:
        """Number of transactions blocked at this site right now."""
        return len(self._waiting_for)

    def lock_count(self) -> int:
        """Number of granules with at least one holder or waiter."""
        return len(self._locks)

    def held_count(self) -> int:
        """Total (transaction, granule) holds in the lock table."""
        return sum(len(lock.holders) for lock in self._locks.values())
