"""Block storage engine for a site's database partition.

Models the testbed's physical layout (paper §2): the database file is
an array of fixed-size blocks (granules), each packing
``records_per_granule`` records; the block is the unit of transfer.

Two levels are distinguished so crash recovery is meaningful:

* the *durable* array — what survives a crash;
* a *volatile* write cache of blocks written but not yet flushed.

CARAT uses no shared database buffer (paper §3 assumptions), so reads
always hit the durable array plus the transaction's own unflushed
writes, and block writes flush through immediately unless the caller
asks otherwise.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, SimulationError

__all__ = ["BlockStorage"]


class BlockStorage:
    """An array of blocks, each a tuple of integer record values."""

    def __init__(self, granules: int, records_per_granule: int,
                 initial_value: int = 0):
        if granules <= 0 or records_per_granule <= 0:
            raise ConfigurationError("granules and records must be positive")
        self.granules = granules
        self.records_per_granule = records_per_granule
        self._durable: list[tuple[int, ...]] = [
            (initial_value,) * records_per_granule for _ in range(granules)
        ]
        self._volatile: dict[int, tuple[int, ...]] = {}
        # Statistics.
        self.reads = 0
        self.writes = 0
        self.flushes = 0

    # -- geometry -------------------------------------------------------------

    @property
    def records_total(self) -> int:
        """Number of records stored."""
        return self.granules * self.records_per_granule

    def granule_of(self, record: int) -> int:
        """Granule (block) number holding *record*."""
        self._check_record(record)
        return record // self.records_per_granule

    def _check_record(self, record: int) -> None:
        if not 0 <= record < self.records_total:
            raise SimulationError(f"record {record} out of range")

    def _check_granule(self, granule: int) -> None:
        if not 0 <= granule < self.granules:
            raise SimulationError(f"granule {granule} out of range")

    # -- block interface -------------------------------------------------------

    def read_block(self, granule: int) -> tuple[int, ...]:
        """Read one block (volatile cache first, then durable array)."""
        self._check_granule(granule)
        self.reads += 1
        if granule in self._volatile:
            return self._volatile[granule]
        return self._durable[granule]

    def write_block(self, granule: int, content: tuple[int, ...],
                    flush: bool = True) -> None:
        """Write one block; ``flush=True`` (default) makes it durable
        immediately, as in the buffer-less testbed."""
        self._check_granule(granule)
        if len(content) != self.records_per_granule:
            raise SimulationError(
                f"block write of {len(content)} records; expected "
                f"{self.records_per_granule}"
            )
        self.writes += 1
        if flush:
            self._durable[granule] = tuple(content)
            self._volatile.pop(granule, None)
            self.flushes += 1
        else:
            self._volatile[granule] = tuple(content)

    def flush(self, granule: int) -> None:
        """Force a volatile block to the durable array."""
        self._check_granule(granule)
        if granule in self._volatile:
            self._durable[granule] = self._volatile.pop(granule)
            self.flushes += 1

    # -- record interface ------------------------------------------------------

    def read_record(self, record: int) -> int:
        """Read one record (reads its whole block)."""
        self._check_record(record)
        block = self.read_block(self.granule_of(record))
        return block[record % self.records_per_granule]

    def write_record(self, record: int, value: int,
                     flush: bool = True) -> tuple[int, ...]:
        """Update one record in place; returns the block's *before*
        image (for the journal)."""
        self._check_record(record)
        granule = self.granule_of(record)
        before = self.read_block(granule)
        slot = record % self.records_per_granule
        after = before[:slot] + (value,) + before[slot + 1:]
        self.write_block(granule, after, flush=flush)
        return before

    # -- failure injection -------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state (power failure)."""
        self._volatile.clear()

    def snapshot(self) -> list[tuple[int, ...]]:
        """Copy of the durable array (test oracle)."""
        return list(self._durable)
