"""One CARAT node: CPU, disk(s), TM server, DM pool, lock manager,
storage and journal (paper §2, Figure 1).

The TM server is modelled as a *serialized* resource: every message is
processed inside the TM critical section (a CPU burst, plus a forced
log write at commit).  The analytical model deliberately ignores this
serialization (paper §5.5); keeping it in the simulator reproduces the
paper's observed model-over-measurement bias at small transaction
sizes.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.model.parameters import SiteParameters
from repro.model.types import Phase
from repro.testbed.des import Simulator
from repro.testbed.locks import LockManager
from repro.testbed.metrics import Metrics
from repro.testbed.resources import CountingPool, FcfsResource
from repro.testbed.storage import BlockStorage
from repro.testbed.wal import Journal

__all__ = ["CaratNode"]


class CaratNode:
    """Hardware and server processes of one site."""

    def __init__(self, sim: Simulator, params: SiteParameters,
                 metrics: Metrics, dm_pool_size: int = 32):
        self.sim = sim
        self.params = params
        self.name = params.name
        self.metrics = metrics
        self.cpu = FcfsResource(sim, f"{self.name}.cpu")
        self.disk = FcfsResource(sim, f"{self.name}.disk")
        if params.log_on_separate_disk:
            self.log_disk = FcfsResource(sim, f"{self.name}.logdisk")
        else:
            self.log_disk = self.disk
        self.tm = FcfsResource(sim, f"{self.name}.tm")
        self.dm_pool = CountingPool(sim, f"{self.name}.dm", dm_pool_size)
        self.locks = LockManager(self.name)
        self.storage = BlockStorage(params.granules,
                                    params.records_per_granule)
        self.journal = Journal()
        #: events of transactions blocked in a lock wait here, fired
        #: with "granted" or "aborted"
        self.lock_wait_events: dict[str, object] = {}

    # -- elementary charging helpers ----------------------------------------

    def use_cpu(self, duration_ms: float) -> Generator:
        """Queue for and consume CPU time."""
        yield from self.cpu.use(duration_ms)

    def disk_read(self, count: int = 1) -> Generator:
        """Perform *count* database-disk block reads (buffer hits are
        decided by the caller)."""
        for _ in range(count):
            yield from self.disk.use(self.params.block_io_ms)
            self.metrics.disk_io(self.name)

    def disk_write(self, count: int = 1) -> Generator:
        """Perform *count* database-disk block writes."""
        for _ in range(count):
            yield from self.disk.use(self.params.block_io_ms)
            self.metrics.disk_io(self.name)

    def log_force(self, count: int = 1) -> Generator:
        """Force-write *count* journal blocks to the log device."""
        for _ in range(count):
            yield from self.log_disk.use(self.params.block_io_ms)
            self.metrics.disk_io(self.name)
            self.journal.force()

    def tm_message(self, cpu_ms: float, force_ios: int = 0,
                   clock=None) -> Generator:
        """Process one message inside the TM critical section.

        The TM server is single-threaded: it holds the TM token for the
        CPU burst and any synchronous log force-writes, serializing all
        other messages behind it.

        When a telemetry span *clock* is attached the synchronous log
        forces are attributed to the TCIO phase (the caller's mark —
        typically TC — covers the CPU burst and any TM-token queueing).
        """
        yield from self.tm.acquire()
        try:
            yield from self.cpu.use(cpu_ms)
            if force_ios:
                if clock is not None:
                    clock.mark(self.sim.now, self.name, Phase.TCIO)
                yield from self.log_force(force_ios)
        finally:
            self.tm.release()

    # -- warm-up -------------------------------------------------------------

    def reset_stats(self) -> None:
        """Restart resource statistics (warm-up discard)."""
        self.cpu.reset_stats()
        self.disk.reset_stats()
        if self.log_disk is not self.disk:
            self.log_disk.reset_stats()
        self.tm.reset_stats()
