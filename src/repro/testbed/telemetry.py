"""Testbed telemetry: phase spans and time-series probes.

Two instruments for looking *inside* a simulator run, mirroring the
paper's two-level validation (measurement vs. model, Tables 3-5 and
Figures 5-9):

:class:`SpanClock` / :class:`TransactionSpans`
    For every transaction commit cycle, the wall time spent in each
    paper phase (INIT, U, TM, DM, LR, DMIO, LW, RW, TC, TCIO, TA,
    TAIO, CWC/CWA, UL, UT) keyed by the site where the time was spent.
    Spans partition the cycle: they sum to the measured response time
    by construction, so the per-(site, base-type) aggregates are
    directly comparable with the model's per-chain residence times.

:class:`TimeSeriesSample`
    Periodic samples of each site's CPU/disk/log-disk queue lengths
    and windowed utilizations, lock-table occupancy, blocked-
    transaction count, WAL backlog and DM-pool usage, taken by a probe
    process at a configurable cadence.

Both feed a :class:`Telemetry` container attached to
:class:`~repro.testbed.system.SimulationConfig`.  Detached (the
default) every hook is a no-op; attached, the instrumentation only
*reads* simulator state — it draws no random numbers, fires no events
and mutates nothing the simulation can observe, so a telemetry-on run
produces bit-identical measurements to a telemetry-off run with the
same seed (guarded by ``tests/testbed/test_telemetry.py``).

Span attribution follows the *user process timeline*: at any instant
the transaction's driver generator is in exactly one (site, phase)
state.  Remote request processing executed inline (the default CARAT
semantics) is attributed to the remote site's TM/DM/LR/DMIO/LW phases
— comparable with the model's slave chains — while network latencies
and (under ``parallel_remote``) the overlap wait are attributed to RW
at the home site.  Work done by *forked* branches (2PC rounds at the
slaves, the §7 parallel remote stream) runs on other timelines and is
seen by the clock as CWC/RW wait at the coordinator, exactly like the
model's delay-center view of 2PC.

Export is JSONL, one object per line, sharing the ``time``/``kind``/
``site`` keys with :meth:`repro.testbed.tracing.Tracer.to_jsonl` so
traces, spans and probe samples can be merged and sorted together.
"""

from __future__ import annotations

import json
from collections import defaultdict, deque
from dataclasses import dataclass
from collections.abc import Iterable
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.model.types import BaseType, Phase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.testbed.system import CaratSimulation

__all__ = ["SpanClock", "TransactionSpans", "TimeSeriesSample",
           "Telemetry", "CPU_SPAN_PHASES", "DISK_SPAN_PHASES"]

#: Phases whose span time is CPU work (queueing included) at the
#: spanning site — the measured analogue of the model's CPU-center
#: residence.
CPU_SPAN_PHASES = (Phase.INIT, Phase.U, Phase.TM, Phase.DM, Phase.LR,
                   Phase.TC, Phase.TA, Phase.UL)

#: Phases whose span time is disk work (queueing included).
DISK_SPAN_PHASES = (Phase.DMIO, Phase.TCIO, Phase.TAIO)


@dataclass(frozen=True)
class TransactionSpans:
    """Phase-time breakdown of one committed transaction cycle.

    ``spans`` maps ``(site, phase)`` to the milliseconds the driver
    spent in that state; the values partition the cycle, so they sum
    to ``response_ms`` (within float addition error).  ``attempts``
    counts executions including deadlock-aborted ones; their TA/TAIO
    rollback time is part of the same cycle.
    """

    txn_id: str
    home: str
    base: BaseType
    started_at: float
    finished_at: float
    attempts: int
    spans: dict[tuple[str, Phase], float]

    @property
    def response_ms(self) -> float:
        """Cycle response time (equals the metric the commit records)."""
        return self.finished_at - self.started_at

    @property
    def time(self) -> float:
        """Window key for time filtering: the commit instant."""
        return self.finished_at

    def total_ms(self) -> float:
        """Sum of all spans (== ``response_ms`` up to float error)."""
        return sum(self.spans.values())

    def site_phase_ms(self, site: str, phase: Phase) -> float:
        """Time spent in one (site, phase) state."""
        return self.spans.get((site, phase), 0.0)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (span keys become ``"site/PHASE"``)."""
        return {
            "time": self.finished_at,
            "kind": "spans",
            "txn": self.txn_id,
            "site": self.home,
            "base": self.base.value,
            "started_at": self.started_at,
            "attempts": self.attempts,
            "response_ms": self.response_ms,
            "spans": {f"{site}/{phase.value}": ms
                      for (site, phase), ms in sorted(
                          self.spans.items(),
                          key=lambda kv: (kv[0][0], kv[0][1].value))},
        }


class SpanClock:
    """Single-timeline phase clock for one transaction commit cycle.

    The executor calls :meth:`mark` at every phase transition of the
    *main* driver generator; time between consecutive marks accrues to
    the previous (site, phase) state.  Forked branches must not mark
    (they run on their own timelines); the executor passes them a
    ``None`` clock.
    """

    __slots__ = ("telemetry", "home", "base", "started_at", "txn_id",
                 "attempts", "_site", "_phase", "_since", "spans")

    def __init__(self, telemetry: Telemetry, home: str, base: BaseType,
                 now: float):
        self.telemetry = telemetry
        self.home = home
        self.base = base
        self.started_at = now
        self.txn_id = ""
        self.attempts = 0
        self._site = home
        self._phase = Phase.INIT
        self._since = now
        self.spans: dict[tuple[str, Phase], float] = {}

    def mark(self, now: float, site: str, phase: Phase) -> None:
        """Enter a new (site, phase) state at time *now*."""
        self._accrue(now)
        self._site = site
        self._phase = phase

    def _accrue(self, now: float) -> None:
        elapsed = now - self._since
        if elapsed > 0.0:
            key = (self._site, self._phase)
            self.spans[key] = self.spans.get(key, 0.0) + elapsed
        self._since = now

    def close(self, now: float, collecting: bool) -> None:
        """Finish the cycle at commit time and hand the record over."""
        self._accrue(now)
        self.telemetry.record_cycle(
            TransactionSpans(
                txn_id=self.txn_id, home=self.home, base=self.base,
                started_at=self.started_at, finished_at=now,
                attempts=self.attempts, spans=self.spans),
            collecting=collecting)


@dataclass(frozen=True)
class TimeSeriesSample:
    """One probe observation of one site.

    Utilizations are *windowed*: the busy fraction since the previous
    sample of the same site (since the probe start for the first
    sample), not cumulative-from-reset — so a series of samples shows
    load dynamics, saturation onset and the warm-up transient.
    """

    time: float
    site: str
    cpu_queue: int
    cpu_utilization: float
    disk_queue: int
    disk_utilization: float
    log_disk_queue: int
    log_disk_utilization: float
    #: granules with at least one holder or waiter
    lock_granules: int
    #: transactions blocked in a lock wait at the site
    blocked_transactions: int
    #: journal records appended but not yet forced to the log device
    wal_backlog: int
    #: DM servers currently allocated from the site pool
    dm_in_use: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {
            "time": self.time,
            "kind": "sample",
            "site": self.site,
            "cpu_queue": self.cpu_queue,
            "cpu_utilization": self.cpu_utilization,
            "disk_queue": self.disk_queue,
            "disk_utilization": self.disk_utilization,
            "log_disk_queue": self.log_disk_queue,
            "log_disk_utilization": self.log_disk_utilization,
            "lock_granules": self.lock_granules,
            "blocked_transactions": self.blocked_transactions,
            "wal_backlog": self.wal_backlog,
            "dm_in_use": self.dm_in_use,
        }


class Telemetry:
    """Bounded telemetry reservoirs for one simulator run.

    Attach via ``SimulationConfig(telemetry=Telemetry(...))``.  Spans
    and samples are kept in bounded ring buffers (oldest dropped, with
    drop counters, like :class:`~repro.testbed.tracing.Tracer`);
    per-(site, base) phase aggregates are running sums and therefore
    exact regardless of ring capacity.  Aggregates only include cycles
    that committed inside the measurement window, matching
    :class:`~repro.testbed.metrics.Metrics`.
    """

    def __init__(self, sample_interval_ms: float = 1_000.0,
                 span_capacity: int = 100_000,
                 sample_capacity: int = 100_000,
                 record_spans: bool = True,
                 record_timeseries: bool = True):
        if sample_interval_ms <= 0:
            raise ConfigurationError("sample_interval_ms must be positive")
        if span_capacity < 1 or sample_capacity < 1:
            raise ConfigurationError("telemetry capacities must be >= 1")
        self.sample_interval_ms = sample_interval_ms
        self.record_spans = record_spans
        self.record_timeseries = record_timeseries
        self._spans: deque[TransactionSpans] = deque(maxlen=span_capacity)
        self._samples: deque[TimeSeriesSample] = \
            deque(maxlen=sample_capacity)
        self.spans_recorded = 0
        self.spans_dropped = 0
        self.samples_recorded = 0
        self.samples_dropped = 0
        #: running span sums per (home, base, span-site, phase), ms
        self._phase_sums: dict[tuple[str, BaseType, str, Phase], float] \
            = defaultdict(float)
        #: committed cycles per (home, base) included in the sums
        self._cycles: dict[tuple[str, BaseType], int] = defaultdict(int)
        self._attempts: dict[tuple[str, BaseType], int] = defaultdict(int)
        # Previous cumulative busy-ms per (site, resource), for the
        # windowed utilization of successive samples.
        self._last_busy: dict[tuple[str, str], float] = {}
        self._last_sample_time: float | None = None

    # ------------------------------------------------------------------
    # span recording (called by the executor via SpanClock)
    # ------------------------------------------------------------------

    def start_cycle(self, home: str, base: BaseType,
                    now: float) -> SpanClock | None:
        """A fresh clock for one commit cycle (None when spans are off)."""
        if not self.record_spans:
            return None
        return SpanClock(self, home, base, now)

    def record_cycle(self, record: TransactionSpans,
                     collecting: bool) -> None:
        """Store one finished cycle; aggregate it when in-window."""
        if len(self._spans) == self._spans.maxlen:
            self.spans_dropped += 1
        self.spans_recorded += 1
        self._spans.append(record)
        if not collecting:
            return
        key = (record.home, record.base)
        self._cycles[key] += 1
        self._attempts[key] += record.attempts
        for (site, phase), ms in record.spans.items():
            self._phase_sums[(record.home, record.base, site, phase)] \
                += ms

    # ------------------------------------------------------------------
    # probe sampling (called by the system's probe process)
    # ------------------------------------------------------------------

    def sample(self, system: CaratSimulation) -> None:
        """Take one observation of every site (read-only)."""
        now = system.sim.now
        last = self._last_sample_time
        window = now - last if last is not None else now
        for name in sorted(system.nodes):
            node = system.nodes[name]
            cpu_util = self._windowed_utilization(
                name, "cpu", node.cpu.cumulative_busy_ms(), window)
            disk_util = self._windowed_utilization(
                name, "disk", node.disk.cumulative_busy_ms(), window)
            if node.log_disk is not node.disk:
                log_queue = node.log_disk.queue_length
                log_util = self._windowed_utilization(
                    name, "logdisk", node.log_disk.cumulative_busy_ms(),
                    window)
            else:
                log_queue = 0
                log_util = 0.0
            record = TimeSeriesSample(
                time=now, site=name,
                cpu_queue=node.cpu.queue_length,
                cpu_utilization=cpu_util,
                disk_queue=node.disk.queue_length,
                disk_utilization=disk_util,
                log_disk_queue=log_queue,
                log_disk_utilization=log_util,
                lock_granules=node.locks.lock_count(),
                blocked_transactions=node.locks.waiting_count(),
                wal_backlog=node.journal.backlog,
                dm_in_use=node.dm_pool.in_use,
            )
            if len(self._samples) == self._samples.maxlen:
                self.samples_dropped += 1
            self.samples_recorded += 1
            self._samples.append(record)
        self._last_sample_time = now

    def _windowed_utilization(self, site: str, resource: str,
                              cumulative_busy_ms: float,
                              window_ms: float) -> float:
        key = (site, resource)
        previous = self._last_busy.get(key, 0.0)
        self._last_busy[key] = cumulative_busy_ms
        if window_ms <= 0.0:
            return 0.0
        return min(1.0, max(0.0, (cumulative_busy_ms - previous)
                            / window_ms))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def spans(self) -> tuple[TransactionSpans, ...]:
        """Retained span records, oldest first."""
        return tuple(self._spans)

    @property
    def samples(self) -> tuple[TimeSeriesSample, ...]:
        """Retained probe samples, oldest first."""
        return tuple(self._samples)

    def committed_cycles(self, home: str, base: BaseType) -> int:
        """In-window commit cycles aggregated for one (site, base)."""
        return self._cycles.get((home, base), 0)

    def attempts_per_commit(self, home: str, base: BaseType) -> float:
        """Mean executions (including aborted ones) per commit cycle."""
        cycles = self._cycles.get((home, base), 0)
        if cycles == 0:
            return 0.0
        return self._attempts[(home, base)] / cycles

    def phase_breakdown(self, home: str,
                        base: BaseType) -> dict[tuple[str, Phase], float]:
        """Mean ms per committed cycle in each (site, phase) state.

        Keyed by the site where the time was spent; entries for sites
        other than *home* are the inline remote-request processing of
        distributed transactions (the model's slave-chain work).
        """
        cycles = self._cycles.get((home, base), 0)
        if cycles == 0:
            return {}
        return {
            (site, phase): total / cycles
            for (h, b, site, phase), total in self._phase_sums.items()
            if h == home and b == base
        }

    def mean_phase_response_ms(self, home: str, base: BaseType) -> float:
        """Mean per-cycle total of all spans (= mean response time)."""
        return sum(self.phase_breakdown(home, base).values())

    def center_breakdown(self, home: str,
                         base: BaseType) -> dict[str, float]:
        """Spans regrouped into the model's service-center view.

        Returns mean ms per committed cycle keyed by the analytical
        model's center names for the *home-site user chain*:

        * ``"cpu"`` / ``"disk"`` — home-site CPU / disk phases;
        * ``"lw"`` — home-site lock waits;
        * ``"rw"`` — network latency plus everything spent at other
          sites (the coordinator chain sees remote work as its RW
          delay center; the remote spans themselves are the slave
          chains' business);
        * ``"cw"`` — 2PC commit/abort waits;
        * ``"ut"`` — think time, including between-retry thinks.
        """
        breakdown = self.phase_breakdown(home, base)
        centers = {"cpu": 0.0, "disk": 0.0, "lw": 0.0, "rw": 0.0,
                   "cw": 0.0, "ut": 0.0}
        for (site, phase), ms in breakdown.items():
            if site != home:
                centers["rw"] += ms
            elif phase in CPU_SPAN_PHASES:
                centers["cpu"] += ms
            elif phase in DISK_SPAN_PHASES:
                centers["disk"] += ms
            elif phase is Phase.LW:
                centers["lw"] += ms
            elif phase is Phase.RW:
                centers["rw"] += ms
            elif phase in (Phase.CWC, Phase.CWA):
                centers["cw"] += ms
            elif phase is Phase.UT:
                centers["ut"] += ms
        return centers

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def _window(self, records: Iterable[Any], since: float | None,
                until: float | None) -> list[Any]:
        out = []
        for record in records:
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            out.append(record)
        return out

    def spans_to_jsonl(self, since: float | None = None,
                       until: float | None = None) -> str:
        """Span records as JSONL (``finished_at`` is the window key)."""
        records = self._window(self._spans, since, until)
        return "\n".join(json.dumps(r.to_dict()) for r in records)

    def samples_to_jsonl(self, since: float | None = None,
                         until: float | None = None) -> str:
        """Probe samples as JSONL."""
        records = self._window(self._samples, since, until)
        return "\n".join(json.dumps(r.to_dict()) for r in records)

    def to_jsonl(self, since: float | None = None,
                 until: float | None = None) -> str:
        """Everything, merged in time order (``kind`` disambiguates)."""
        records: list[Any] = self._window(self._samples, since, until)
        records += self._window(self._spans, since, until)
        records.sort(key=lambda r: r.time)
        return "\n".join(json.dumps(r.to_dict()) for r in records)

    def summary(self) -> dict[str, Any]:
        """Counts and capacities, for quick inspection."""
        return {
            "spans_recorded": self.spans_recorded,
            "spans_dropped": self.spans_dropped,
            "spans_retained": len(self._spans),
            "samples_recorded": self.samples_recorded,
            "samples_dropped": self.samples_dropped,
            "samples_retained": len(self._samples),
            "sample_interval_ms": self.sample_interval_ms,
            "aggregated_cycles": dict(
                (f"{home}/{base.value}", count)
                for (home, base), count in sorted(
                    self._cycles.items(),
                    key=lambda kv: (kv[0][0], kv[0][1].value))),
        }
