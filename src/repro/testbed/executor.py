"""Transaction execution: user processes driving the CARAT protocol.

Each user (paper's TR process) repeatedly submits one synthetic
transaction.  The driver walks the full message protocol of paper §2 —
TBEGIN/DBOPEN initialization, TDO requests routed through the TM
servers (local DOSTEP or remote REMDO), granule locking with local and
global deadlock detection, before-image journaling for updates, and
TEND with either a simple local commit or a centralized two-phase
commit — charging every CPU burst, TM critical section, message delay
and disk I/O to the simulated resources.

Resource costs come from the same :class:`SiteParameters` /
:class:`ProtocolCosts` tables that parameterize the analytical model,
so model and "measurement" stay comparable (paper §6).
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Generator
from typing import TYPE_CHECKING

from repro.model.types import BaseType, Phase
from repro.testbed.des import Fork, Timeout, Wait
from repro.testbed.locks import LockRequestOutcome
from repro.testbed.node import CaratNode
from repro.testbed.tracing import TraceEventKind
from repro.testbed.transactions import Transaction
from repro.testbed.wal import RecordType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.testbed.system import CaratSimulation
    from repro.testbed.telemetry import SpanClock

__all__ = ["UserProcess"]

#: Outcome markers passed through lock-wait events.
GRANTED = "granted"
ABORTED = "aborted"


class UserProcess:
    """One user terminal submitting transactions of a fixed base type."""

    def __init__(self, system: CaratSimulation, home: str,
                 base: BaseType, user_index: int):
        self.system = system
        self.sim = system.sim
        self.home = home
        self.base = base
        self.user_index = user_index
        # Stable per-user stream: crc32 keeps runs reproducible across
        # processes (str.__hash__ is salted per interpreter).
        material = f"{system.config.seed}:{home}:{base.value}:{user_index}"
        self.rng = random.Random(zlib.crc32(material.encode("ascii")))
        self._seq = 0

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> Generator:
        """Process body: submit, retry on abort, think, repeat."""
        workload = self.system.workload
        think = workload.think_time_ms
        while True:
            yield from self.run_one()
            if think > 0:
                yield Timeout(self._think(think))

    def run_one(self) -> Generator:
        """Submit one transaction to commit (retrying aborts), record
        its metrics, and return.  Used directly by open-arrival
        sources, and by :meth:`run` in a loop for closed terminals."""
        workload = self.system.workload
        think = workload.think_time_ms
        cycle_start = self.sim.now
        telemetry = self.system.telemetry
        clock = (telemetry.start_cycle(self.home, self.base, cycle_start)
                 if telemetry is not None else None)
        while True:
            committed = yield from self._attempt(clock)
            if committed:
                break
            self.system.metrics.abort(self.home, self.base)
            if think > 0:
                self._mark(clock, self.home, Phase.UT)
                yield Timeout(self._think(think))
        if clock is not None:
            clock.close(self.sim.now,
                        collecting=self.system.metrics.collecting)
        records = (workload.requests_per_txn
                   * workload.records_per_request)
        self.system.metrics.commit(
            self.home, self.base,
            self.sim.now - cycle_start, records)

    def _mark(self, clock: SpanClock | None, site: str,
              phase: Phase) -> None:
        """Record a phase transition on the main driver timeline.

        No-op when telemetry is detached (``clock`` is None) and for
        forked branches, which run on their own timelines and are
        always given a None clock — their duration is observed by the
        coordinator as CWC/RW wait, matching the model's delay-center
        view of 2PC and overlapped remote work.
        """
        if clock is not None:
            clock.mark(self.sim.now, site, phase)

    def _think(self, mean_ms: float) -> float:
        """Exponential think time (memoryless terminal)."""
        return self.rng.expovariate(1.0 / mean_ms)

    # ------------------------------------------------------------------
    # one execution attempt
    # ------------------------------------------------------------------

    def _attempt(self, clock: SpanClock | None = None) -> Generator:
        """Run one submission; returns True on commit, False on abort."""
        txn = self._begin()
        if clock is not None:
            clock.txn_id = txn.txn_id
            clock.attempts += 1
            clock.mark(self.sim.now, self.home, Phase.INIT)
        home = self.system.nodes[self.home]
        try:
            yield from self._init_phase(txn, home)
            plan = self._request_plan()
            if self.system.config.parallel_remote:
                outcome = yield from self._run_plan_parallel(txn, home,
                                                             plan, clock)
            else:
                outcome = yield from self._run_plan_serial(txn, home,
                                                           plan, clock)
            if outcome is not None:       # abort trigger site name
                yield from self._rollback(txn, outcome, clock)
                return False
            yield from self._commit(txn, home, clock)
            self._record_history(txn)
            return True
        finally:
            self._end(txn)

    def _run_plan_serial(self, txn: Transaction, home: CaratNode,
                         plan: list[str],
                         clock: SpanClock | None = None) -> Generator:
        """CARAT semantics: one active request at a time."""
        for kind in plan:
            outcome = yield from self._one_request(txn, home, kind,
                                                   clock)
            if outcome is not None:
                return outcome
        return None

    def _run_plan_parallel(self, txn: Transaction, home: CaratNode,
                           plan: list[str],
                           clock: SpanClock | None = None) -> Generator:
        """§7 extension: the remote request stream runs as one forked
        branch, overlapping the coordinator's local requests; the two
        streams join before commit.

        The remote requests stay sequential *among themselves* — each
        slave site has exactly one DM server per transaction, so two
        outstanding requests at a slave are physically impossible —
        but they no longer serialize with the local work.

        The forked branch runs on its own timeline, so it gets no span
        clock; the coordinator's join wait is attributed to RW.
        """
        remotes = [kind for kind in plan if kind == "remote"]
        locals_ = [kind for kind in plan if kind == "local"]
        branch = None
        if remotes:
            branch = yield Fork(
                self._run_plan_serial(txn, home, remotes))
        outcome = yield from self._run_plan_serial(txn, home, locals_,
                                                   clock)
        if branch is not None:
            self._mark(clock, self.home, Phase.RW)
            remote_outcome = yield Wait(branch.completion)
            if outcome is None:
                outcome = remote_outcome
        return outcome

    def _record_history(self, txn: Transaction) -> None:
        self.system.trace(TraceEventKind.COMMIT, txn.txn_id, self.home)
        if not self.system.config.record_history:
            return
        from repro.testbed.serializability import (AccessRecord,
                                                   CommittedTransaction)
        accesses = tuple(
            AccessRecord(site=site, granule=granule, mode=mode,
                         acquired_at=at)
            for site, granule, mode, at in txn.access_log)
        self.system.history.append(CommittedTransaction(
            txn_id=txn.txn_id, committed_at=self.sim.now,
            accesses=accesses))

    def _begin(self) -> Transaction:
        self._seq += 1
        workload = self.system.workload
        if self.base.is_distributed:
            sites = (self.home,) + tuple(
                s for s in workload.sites if s != self.home)
        else:
            sites = (self.home,)
        txn = Transaction(
            txn_id=f"{self.home}/{self.base.value}{self.user_index}"
                   f"#{self._seq}",
            base=self.base, home=self.home, sites=sites,
        )
        self.system.registry[txn.txn_id] = txn
        self.system.trace(TraceEventKind.BEGIN, txn.txn_id, self.home)
        return txn

    def _end(self, txn: Transaction) -> None:
        txn.finished = True
        for site in txn.sites:
            state = txn.state(site)
            if state.dm_allocated:
                self.system.nodes[site].dm_pool.release()
                state.dm_allocated = False
        self.system.registry.pop(txn.txn_id, None)

    def _request_plan(self) -> list[str]:
        """Shuffled sequence of local/remote request markers."""
        workload = self.system.workload
        if self.base.is_distributed:
            # Use the same l/r split as the model's coordinator chain.
            from repro.model.types import ChainType
            chain = (ChainType.DUC if self.base is BaseType.DU
                     else ChainType.DROC)
            local = workload.local_requests(chain)
            remote = workload.remote_requests(chain)
        else:
            local = workload.requests_per_txn
            remote = 0
        plan = ["local"] * local + ["remote"] * remote
        self.rng.shuffle(plan)
        return plan

    # ------------------------------------------------------------------
    # protocol phases
    # ------------------------------------------------------------------

    def _init_phase(self, txn: Transaction, home: CaratNode) -> Generator:
        """TBEGIN + DBOPEN round trips; DM allocation at every site.

        DM servers are acquired in *global site order* (resource
        ordering) so DM-pool exhaustion can never deadlock — two
        distributed transactions holding each other's last DM would
        otherwise stall forever, invisible to the lock-level deadlock
        detectors.
        """
        yield from home.tm_message(home.params.protocol.tbegin_cpu)
        for site in sorted(txn.sites):
            node = self.system.nodes[site]
            if site != self.home:
                yield Timeout(self.system.alpha_ms)
            yield from node.tm_message(
                node.params.protocol.dbopen_cpu_per_site)
            yield from node.dm_pool.acquire()
            txn.state(site).dm_allocated = True
            if site != self.home:
                yield Timeout(self.system.alpha_ms)

    def _one_request(self, txn: Transaction, home: CaratNode,
                     kind: str,
                     clock: SpanClock | None = None) -> Generator:
        """One TDO request; returns None or the abort-trigger site."""
        costs = home.params.costs_for(self._home_chain())
        metrics = self.system.metrics
        # U phase: the user process prepares the request.
        self._mark(clock, self.home, Phase.U)
        yield from home.use_cpu(costs.u_cpu)
        # TM dispatch (TDO -> DOSTEP or REMDO).
        self._mark(clock, self.home, Phase.TM)
        yield from home.tm_message(costs.tm_cpu)
        metrics.event(self.home, self.base, "tm_msg")
        if kind == "local":
            outcome = yield from self._dm_request(txn, home, clock)
        else:
            target_name = self.rng.choice(txn.sites[1:])
            target = self.system.nodes[target_name]
            remote_costs = target.params.costs_for(self._home_chain())
            # Network latency is RW at home; the inline processing at
            # the target is attributed to the target's own phases (the
            # model's slave-chain work).
            self._mark(clock, self.home, Phase.RW)
            yield Timeout(self.system.alpha_ms)
            self._mark(clock, target_name, Phase.TM)
            yield from target.tm_message(remote_costs.tm_cpu)
            metrics.event(target_name, self.base, "slave_tm_msg")
            outcome = yield from self._dm_request(txn, target, clock)
            self._mark(clock, target_name, Phase.TM)
            yield from target.tm_message(remote_costs.tm_cpu)
            metrics.event(target_name, self.base, "slave_tm_msg")
            self._mark(clock, self.home, Phase.RW)
            yield Timeout(self.system.alpha_ms)
        # TM response processing (DOSTEP_K / REMDO_K).
        self._mark(clock, self.home, Phase.TM)
        yield from home.tm_message(costs.tm_cpu)
        metrics.event(self.home, self.base, "tm_msg")
        return outcome

    def _home_chain(self):
        """Chain type used to index the basic cost table."""
        from repro.model.types import ChainType
        return {
            BaseType.LRO: ChainType.LRO, BaseType.LU: ChainType.LU,
            BaseType.DRO: ChainType.DROC, BaseType.DU: ChainType.DUC,
        }[self.base]

    def _dm_request(self, txn: Transaction, node: CaratNode,
                    clock: SpanClock | None = None) -> Generator:
        """DM server executes one request at *node*; returns None on
        success or the node name on deadlock abort."""
        workload = self.system.workload
        costs = node.params.costs_for(self._home_chain())
        state = txn.state(node.name)
        records = self._pick_records(node, workload.records_per_request)
        for record in records:
            granule = node.storage.granule_of(record)
            # DM processing between lock requests.
            self._mark(clock, node.name, Phase.DM)
            yield from node.use_cpu(costs.dm_cpu)
            if granule in state.held:
                continue
            outcome = yield from self._acquire_lock(txn, node, granule,
                                                    clock)
            if outcome is not None:
                return outcome
            state.held.add(granule)
            self._mark(clock, node.name, Phase.DMIO)
            yield from node.use_cpu(costs.dmio_cpu)
            self.system.metrics.event(node.name, self.base,
                                      "granule_access")
            yield from self._granule_io(txn, node, granule)
        # Final DM processing before the response message.
        self._mark(clock, node.name, Phase.DM)
        yield from node.use_cpu(costs.dm_cpu)
        return None

    def _pick_records(self, node: CaratNode, count: int) -> list[int]:
        """Random records from the site's partition — uniform, or
        skewed per the workload's b-c hot-spot or Zipf rule."""
        total = node.storage.records_total
        workload = self.system.workload
        if workload.zipf_s > 0.0:
            return self._pick_zipf_records(node, count)
        if not workload.is_hotspot:
            return self.rng.sample(range(total), count)
        hot_records = max(1, int(total * workload.hot_data_fraction))
        picked: set[int] = set()
        while len(picked) < count:
            if self.rng.random() < workload.hot_access_fraction:
                picked.add(self.rng.randrange(hot_records))
            else:
                picked.add(self.rng.randrange(hot_records, total))
        return list(picked)

    def _pick_zipf_records(self, node: CaratNode,
                           count: int) -> list[int]:
        """Zipf-skewed draw: granule ``i`` with probability
        proportional to ``(i + 1)^-s``, then a uniform record within
        the granule, retrying duplicates until ``count`` are distinct
        (mirrors the model's collision-multiplier view of the skew)."""
        import bisect
        cdf = self.system.zipf_cdf(node.name)
        per_granule = node.storage.records_per_granule
        picked: set[int] = set()
        while len(picked) < count:
            granule = bisect.bisect_right(cdf, self.rng.random())
            if granule >= len(cdf):  # guard the u == 1.0 edge
                granule = len(cdf) - 1
            picked.add(granule * per_granule
                       + self.rng.randrange(per_granule))
        return list(picked)

    def _acquire_lock(self, txn: Transaction, node: CaratNode,
                      granule: int,
                      clock: SpanClock | None = None) -> Generator:
        """LR phase: lock request, possible LW wait, deadlock handling."""
        costs = node.params.costs_for(self._home_chain())
        self._mark(clock, node.name, Phase.LR)
        yield from node.use_cpu(costs.lr_cpu)
        self.system.metrics.event(node.name, self.base, "lock_request")
        wait = self.sim.event()
        outcome = node.locks.request(
            txn.txn_id, granule, txn.lock_mode,
            grant=lambda: wait.fire(GRANTED))
        if outcome is LockRequestOutcome.GRANTED:
            self._log_access(txn, node, granule)
            return None
        if outcome is LockRequestOutcome.DEADLOCK:
            node.metrics.local_deadlock(node.name)
            self.system.trace(TraceEventKind.DEADLOCK_LOCAL,
                              txn.txn_id, node.name,
                              detail=f"granule={granule}")
            return node.name
        # Blocked: register for remote aborts and start a prober.
        node.metrics.lock_wait(node.name)
        self._mark(clock, node.name, Phase.LW)
        self.system.trace(TraceEventKind.LOCK_WAIT, txn.txn_id,
                          node.name, detail=f"granule={granule}")
        node.lock_wait_events[txn.txn_id] = wait
        txn.blocked_at = node.name
        yield Fork(self.system.detector.prober(
            txn.txn_id, node,
            abort_victim=lambda: self.system.abort_blocked(
                txn.txn_id, node.name)))
        result = yield Wait(wait)
        node.lock_wait_events.pop(txn.txn_id, None)
        txn.blocked_at = None
        if result == ABORTED:
            return node.name
        self.system.trace(TraceEventKind.LOCK_GRANT, txn.txn_id,
                          node.name, detail=f"granule={granule}")
        self._log_access(txn, node, granule)
        return None

    def _log_access(self, txn: Transaction, node: CaratNode,
                    granule: int) -> None:
        if self.system.config.record_history:
            txn.access_log.append(
                (node.name, granule, txn.lock_mode, self.sim.now))

    def _granule_io(self, txn: Transaction, node: CaratNode,
                    granule: int) -> Generator:
        """DMIO phase: the physical I/O for one granule access."""
        state = txn.state(node.name)
        hit = (node.params.buffer_hit_probability > 0.0
               and self.rng.random() < node.params.buffer_hit_probability)
        if not hit:
            yield from node.disk_read()
        if self.base.is_update:
            before = node.storage.read_block(granule)
            node.journal.append(RecordType.BEFORE_IMAGE, txn.txn_id,
                                granule=granule, image=before)
            # Journal write (WAL rule: before-image durable before the
            # in-place block write).
            yield from node.log_force()
            after = tuple(v + 1 for v in before)
            node.storage.write_block(granule, after, flush=True)
            yield from node.disk_write()
            state.before_images.setdefault(granule, before)

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self, txn: Transaction, home: CaratNode,
                clock: SpanClock | None = None) -> Generator:
        """TEND: local commit or centralized two-phase commit."""
        protocol = home.params.protocol
        costs = home.params.costs_for(self._home_chain())
        # The user prepares the TEND message (last U-phase visit).
        self._mark(clock, self.home, Phase.U)
        yield from home.use_cpu(costs.u_cpu)
        if not txn.is_distributed:
            home.journal.append(RecordType.COMMIT, txn.txn_id)
            force = (protocol.coordinator_commit_ios
                     if self.base.is_update
                     else protocol.readonly_commit_ios)
            self._mark(clock, self.home, Phase.TC)
            yield from home.tm_message(protocol.commit_cpu + costs.tm_cpu,
                                       force_ios=force, clock=clock)
            self._mark(clock, self.home, Phase.UL)
            yield from self._release_site(txn, home)
            return

        # --- centralized 2PC (paper §2, [GRAY79]) ---
        self._mark(clock, self.home, Phase.TC)
        yield from home.tm_message(protocol.commit_cpu + costs.tm_cpu)
        slaves = [self.system.nodes[s] for s in txn.sites[1:]]
        # Round 1: PREPARE, in parallel.
        yield from self._parallel_round(txn, home,
                                        [self._prepare_at(txn, s)
                                         for s in slaves], clock)
        # Coordinator decision: force the commit record.
        home.journal.append(RecordType.COMMIT, txn.txn_id)
        force = (protocol.coordinator_commit_ios if self.base.is_update
                 else protocol.readonly_commit_ios)
        self._mark(clock, self.home, Phase.TC)
        yield from home.tm_message(0.0, force_ios=force, clock=clock)
        # Round 2: COMMIT, in parallel.
        yield from self._parallel_round(txn, home,
                                        [self._commit_at(txn, s)
                                         for s in slaves], clock)
        self._mark(clock, self.home, Phase.UL)
        yield from self._release_site(txn, home)

    def _parallel_round(self, txn: Transaction, home: CaratNode,
                        branches: list[Generator],
                        clock: SpanClock | None = None) -> Generator:
        """Run one 2PC round: branches in parallel, then one ack
        processed at the coordinator TM per slave.

        Branches are forked (own timelines, no clock); the coordinator
        observes them as CWC — the model's 2PC commit-wait center."""
        costs = home.params.costs_for(self._home_chain())
        processes = []
        for branch in branches:
            process = yield Fork(branch)
            processes.append(process)
        for process in processes:
            self._mark(clock, self.home, Phase.CWC)
            yield Wait(process.completion)
            self._mark(clock, self.home, Phase.TC)
            yield from home.tm_message(costs.tm_cpu)

    def _prepare_at(self, txn: Transaction,
                    node: CaratNode) -> Generator:
        """PREPARE processing at one slave site."""
        protocol = node.params.protocol
        costs = node.params.costs_for(self._home_chain())
        yield Timeout(self.system.alpha_ms)
        force = 0
        if self.base.is_update and protocol.slave_commit_ios >= 1:
            node.journal.append(RecordType.PREPARE, txn.txn_id)
            force = 1
        self.system.trace(TraceEventKind.PREPARE, txn.txn_id,
                          node.name)
        yield from node.tm_message(costs.tm_cpu, force_ios=force)
        yield Timeout(self.system.alpha_ms)

    def _commit_at(self, txn: Transaction,
                   node: CaratNode) -> Generator:
        """COMMIT processing and lock release at one slave site."""
        protocol = node.params.protocol
        costs = node.params.costs_for(self._home_chain())
        yield Timeout(self.system.alpha_ms)
        force = 0
        if self.base.is_update and protocol.slave_commit_ios >= 2:
            node.journal.append(RecordType.COMMIT, txn.txn_id)
            force = protocol.slave_commit_ios - 1
        yield from node.tm_message(costs.tm_cpu + protocol.commit_cpu,
                                   force_ios=force)
        yield from self._release_site(txn, node)
        yield Timeout(self.system.alpha_ms)

    def _release_site(self, txn: Transaction,
                      node: CaratNode) -> Generator:
        """UL phase at one site: unlock CPU, release the lock table."""
        protocol = node.params.protocol
        state = txn.state(node.name)
        if state.held:
            yield from node.use_cpu(
                protocol.unlock_cpu_per_lock * len(state.held))
        node.locks.release_all(txn.txn_id)
        state.held.clear()
        state.before_images.clear()

    # ------------------------------------------------------------------
    # abort / rollback
    # ------------------------------------------------------------------

    def _rollback(self, txn: Transaction, trigger_site: str,
                  clock: SpanClock | None = None) -> Generator:
        """TA/TAIO phases: undo updates and release locks everywhere."""
        txn.aborted = True
        self.system.trace(TraceEventKind.ABORT, txn.txn_id,
                          trigger_site)
        for site in txn.touched_sites():
            node = self.system.nodes[site]
            protocol = node.params.protocol
            self._mark(clock, node.name, Phase.TA)
            if site != txn.home:
                yield Timeout(self.system.alpha_ms)
            yield from node.tm_message(protocol.abort_message_cpu)
            state = txn.state(site)
            if state.before_images:
                undo = len(state.before_images)
                yield from node.use_cpu(
                    protocol.undo_cpu_per_granule * undo)
                for granule, image in state.before_images.items():
                    node.storage.write_block(granule, image, flush=True)
                self._mark(clock, node.name, Phase.TAIO)
                yield from node.disk_write(
                    protocol.undo_ios_per_granule * undo)
                node.journal.append(RecordType.ABORT, txn.txn_id)
            self._mark(clock, node.name, Phase.UL)
            yield from self._release_site(txn, node)
