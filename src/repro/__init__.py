"""carat-qnm — reproduction of Jenq, Kohler & Towsley (ICDE 1987).

A queueing network model for a distributed database testbed system,
plus a discrete-event simulator of the CARAT testbed it was validated
against.

Public API highlights
---------------------
``repro.model``
    The analytical model: :func:`repro.model.solve_model` solves a
    workload against site parameters and returns a
    :class:`repro.model.ModelSolution`.
``repro.testbed``
    The CARAT simulator: :class:`repro.testbed.CaratSimulation` runs the
    same workloads mechanistically (2PL + deadlock detection, WAL,
    centralized 2PC) and reports the same measures.
``repro.queueing``
    Generic closed queueing-network machinery (MVA, convolution, CTMC,
    Yao's formula, an Ethernet delay model).
``repro.experiments``
    Harness that regenerates every table and figure of the paper.
"""

from repro.errors import (CaratError, ConfigurationError, ConvergenceError,
                          RecoveryError, SimulationError)
from repro.model import (BaseType, ChainType, ModelConfig, ModelSolution,
                         Phase, ProtocolCosts, SiteParameters, WorkloadSpec,
                         lb8, mb4, mb8, paper_sites, solve_model, ub6)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CaratError", "ConfigurationError", "ConvergenceError",
    "SimulationError", "RecoveryError",
    "BaseType", "ChainType", "Phase",
    "WorkloadSpec", "lb8", "mb4", "mb8", "ub6",
    "SiteParameters", "ProtocolCosts", "paper_sites",
    "ModelConfig", "ModelSolution", "solve_model",
]
