"""Command-line interface: ``python -m repro`` / ``carat-qnm``.

Subcommands
-----------
``model``
    Solve the analytical model for one workload and print the site
    measures.
``simulate``
    Run the CARAT testbed simulator for one workload, optionally with
    event tracing (``--trace``).
``compare``
    Run model and simulator on the same workload and print the
    residual report (docs/diagnostics.md).
``experiment``
    Reproduce one of the paper's tables/figures (model + simulator)
    and print the comparison table.
``diagnose``
    Solve a workload or an experiment's model sweep with convergence
    tracing attached and emit an iteration-by-iteration JSON report
    (docs/diagnostics.md).
``perf``
    Run the perf-baseline suite, emit ``BENCH_*.json`` records, and
    optionally gate against a committed baseline (docs/diagnostics.md).
``plan``
    Capacity planner: search the throughput-optimal MPL, check SLOs
    and evaluate hardware what-ifs over the analytic model
    (docs/planner.md).
``stats``
    Run experiments / a plan / the perf suite under the run-level
    observability substrate and print per-stage and per-worker
    summaries, with optional Chrome-trace and Prometheus dumps
    (docs/observability.md).
``list``
    List the available experiments and workloads, with the
    operational-bounds pre-screen per workload.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (EXPERIMENTS, experiment,
                               render_figure_series, render_per_type_table,
                               render_summary_table)
from repro.model.parameters import paper_sites
from repro.model.solver import solve_model
from repro.model.workload import STANDARD_WORKLOADS
from repro.testbed.system import simulate

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="carat-qnm",
        description="Queueing network model and simulator for the CARAT "
                    "distributed database testbed (Jenq/Kohler/Towsley, "
                    "ICDE 1987).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    model = sub.add_parser("model", help="solve the analytical model")
    _workload_args(model)

    sim = sub.add_parser("simulate", help="run the testbed simulator")
    _workload_args(sim)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--duration-s", type=float, default=600.0,
                     help="measured simulated seconds")
    sim.add_argument("--warmup-s", type=float, default=60.0)
    sim.add_argument("--trace", action="store_true",
                     help="record lifecycle events and dump them after "
                          "the run (docs/diagnostics.md)")
    sim.add_argument("--trace-limit", type=int, default=50,
                     help="events shown on stdout (most recent first "
                          "dropped; files always get every retained "
                          "event)")
    sim.add_argument("--trace-txn", default=None, metavar="SUBSTRING",
                     help="only events whose transaction id contains "
                          "SUBSTRING")
    sim.add_argument("--trace-site", default=None,
                     help="only events at one site")
    sim.add_argument("--trace-file", default=None,
                     help="write the filtered trace to a file instead "
                          "of stdout")
    sim.add_argument("--trace-format", choices=["text", "jsonl"],
                     default="text")

    compare = sub.add_parser(
        "compare",
        help="run model + simulator and print the residual report "
             "(docs/diagnostics.md)")
    _workload_args(compare)
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument("--duration-s", type=float, default=600.0,
                         help="measured simulated seconds")
    compare.add_argument("--warmup-s", type=float, default=60.0)
    compare.add_argument("--quick", action="store_true",
                         help="short window (60s measured; noisier "
                              "residuals)")
    compare.add_argument("--max-residual", type=float, default=None,
                         metavar="FRACTION",
                         help="exit 1 when any comparable |residual| "
                              "exceeds FRACTION (e.g. 0.3 = 30%%)")
    compare.add_argument("--json", action="store_true",
                         help="emit the full report as JSON")
    compare.add_argument("--output", default="-",
                         help="file path or '-' for stdout")

    exp = sub.add_parser("experiment",
                         help="reproduce tables/figures of the paper")
    exp.add_argument("exp_id", nargs="+", choices=sorted(EXPERIMENTS),
                     help="one or more experiment ids; their sweep "
                          "points share one --jobs fan-out batch")
    exp.add_argument("--quick", action="store_true",
                     help="short simulation window (smoke test)")
    exp.add_argument("--model-only", action="store_true",
                     help="skip the simulator")
    exp.add_argument("--bounds", action="store_true",
                     help="append operational-bounds columns (X-ub, "
                          "N-sat) to summary tables (docs/planner.md)")
    _sweep_args(exp)

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (all artifacts)")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--jobs", type=int, default=1,
                        help="worker processes per sweep "
                             "(docs/parallel.md)")

    calibrate = sub.add_parser(
        "calibrate",
        help="re-fit the protocol cost constants (DESIGN.md §4.3)")
    calibrate.add_argument("--evaluations", type=int, default=60)

    sensitivity = sub.add_parser(
        "sensitivity",
        help="sweep one site parameter and report the elasticity")
    _workload_args(sensitivity)
    sensitivity.add_argument(
        "--field", default="block_io_ms",
        choices=["block_io_ms", "granules", "records_per_granule"])
    sensitivity.add_argument("--values", type=float, nargs="+",
                             default=None,
                             help="sweep values (default: 0.7x/1x/1.5x "
                                  "of the paper's setting)")

    diagnose = sub.add_parser(
        "diagnose",
        help="emit a JSON convergence report for a workload or an "
             "experiment's model sweep (docs/diagnostics.md)")
    diagnose.add_argument(
        "target",
        help="experiment id (e.g. fig5) or workload name (e.g. MB8)")
    diagnose.add_argument("-n", "--requests", type=int, default=8,
                          help="requests per transaction (workload "
                               "targets only)")
    diagnose.add_argument("--quick", action="store_true",
                          help="solve only the first and last sweep "
                               "points of an experiment target")
    diagnose.add_argument("--warm-start", action="store_true",
                          help="chain the sweep solves (experiment "
                               "targets only)")
    diagnose.add_argument("--summary-only", action="store_true",
                          help="omit the per-iteration records and "
                               "emit only the per-solve summaries")
    diagnose.add_argument("--output", default="-",
                          help="file path or '-' for stdout")

    perf = sub.add_parser(
        "perf",
        help="run the perf-baseline suite and emit/check BENCH_*.json "
             "(docs/diagnostics.md)")
    perf.add_argument("--output-dir", default=None,
                      help="directory for the fresh BENCH_*.json files "
                           "(default: don't write)")
    perf.add_argument("--baseline-dir", default="benchmarks/baselines",
                      help="committed baseline to compare against")
    perf.add_argument("--check", action="store_true",
                      help="fail (exit 1) on >tolerance regression "
                           "against the baseline")
    perf.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline directory with this "
                           "run's records")
    perf.add_argument("--tolerance", type=float, default=0.25,
                      help="allowed relative regression on "
                           "deterministic counters (default 0.25)")
    perf.add_argument("--time-tolerance", type=float, default=None,
                      help="allowed relative wall-time regression "
                           "(default: same as --tolerance; CI uses a "
                           "looser value for runner noise)")

    export = sub.add_parser(
        "export", help="export one experiment's sweep as CSV")
    export.add_argument("exp_id", choices=sorted(EXPERIMENTS))
    export.add_argument("--output", default="-",
                        help="file path or '-' for stdout")
    export.add_argument("--model-only", action="store_true")
    export.add_argument("--quick", action="store_true")
    _sweep_args(export)

    plan = sub.add_parser(
        "plan",
        help="capacity plan: optimal MPL, thrashing knee, SLO "
             "verdicts, bottlenecks and what-ifs (docs/planner.md)")
    plan.add_argument("--workload", type=str.upper,
                      choices=sorted(STANDARD_WORKLOADS),
                      default="MB8",
                      help="workload mix (case-insensitive)")
    plan.add_argument("-n", "--requests", type=int, default=8,
                      help="requests per transaction (paper: 4..20)")
    plan.add_argument("--mpl-max", type=int, default=24,
                      help="per-site MPL search ceiling")
    plan.add_argument("--slo-response", type=float, default=None,
                      metavar="SECONDS",
                      help="mean commit-cycle response-time target")
    plan.add_argument("--slo-abort", type=float, default=None,
                      metavar="FRACTION",
                      help="mean per-execution abort-probability "
                           "target")
    plan.add_argument("--whatif", action="append", default=None,
                      metavar="KIND[=FACTOR]",
                      help="candidate to evaluate (cpu, disk, "
                           "granules, log-split; repeatable); "
                           "'standard' expands the default menu")
    plan.add_argument("--tolerance", type=float, default=1e-4,
                      help="solver convergence tolerance per point")
    plan.add_argument("--max-iterations", type=int, default=600,
                      help="solver iteration budget per point")
    plan.add_argument("--jobs", type=int, default=1,
                      help="worker processes for the what-if fan-out "
                           "(docs/parallel.md); 0 means one per CPU")
    plan.add_argument("--cached", action="store_true",
                      help="memoize solves in the on-disk result "
                           "cache ($CARAT_CACHE_DIR)")
    plan.add_argument("--json", action="store_true",
                      help="emit the plan as JSON")
    plan.add_argument("--output", default="-",
                      help="file path or '-' for stdout")

    stats = sub.add_parser(
        "stats",
        help="run a sweep/plan/perf target under the observability "
             "substrate and print stage/worker summaries "
             "(docs/observability.md)")
    stats.add_argument(
        "targets", nargs="+",
        choices=sorted(EXPERIMENTS) + ["plan", "perf"],
        help="experiment ids (share one sweep batch), 'plan' (capacity "
             "plan with the standard what-if menu) or 'perf' (one "
             "perf-suite experiment)")
    stats.add_argument("--quick", action="store_true",
                       help="short simulation window (smoke test)")
    stats.add_argument("--model-only", action="store_true",
                       help="skip the simulator (experiment targets)")
    stats.add_argument("--workload", type=str.upper,
                       choices=sorted(STANDARD_WORKLOADS), default="MB8",
                       help="workload mix for the 'plan' target")
    stats.add_argument("-n", "--requests", type=int, default=8,
                       help="requests per transaction ('plan' target)")
    stats.add_argument("--mpl-max", type=int, default=24,
                       help="per-site MPL ceiling ('plan' target)")
    stats.add_argument("--trace-out", default=None, metavar="FILE",
                       help="write the merged Chrome trace_event JSON "
                            "(load in Perfetto / chrome://tracing)")
    stats.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the metrics dump in Prometheus "
                            "textfile format")
    _sweep_args(stats)

    lint = sub.add_parser(
        "lint",
        help="run caratlint, the domain-invariant static analyzer "
             "(docs/static-analysis.md)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint "
                           "(default: src)")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text",
                      help="report format (default: text)")
    lint.add_argument("--output", metavar="FILE", default=None,
                      help="write the report to FILE instead of "
                           "stdout")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rule catalog and "
                           "exit")

    from repro.scenarios.cli import add_scenario_parser
    add_scenario_parser(sub)

    sub.add_parser("list", help="list experiments, workloads and "
                                "scenarios")
    return parser


def _workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=sorted(STANDARD_WORKLOADS),
                        default="MB8")
    parser.add_argument("-n", "--requests", type=int, default=8,
                        help="requests per transaction (paper: 4..20)")


def _sweep_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the sweep-running subcommands."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the sweep points "
                             "(docs/parallel.md); 0 means one per CPU")
    parser.add_argument("--cached", action="store_true",
                        help="serve/store results via the on-disk "
                             "content-addressed cache "
                             "($CARAT_CACHE_DIR, docs/parallel.md)")
    parser.add_argument("--warm-start", action="store_true",
                        help="seed each model solve from the previous "
                             "sweep point's converged state")
    parser.add_argument("--trace", action="store_true",
                        help="record per-solve convergence traces "
                             "(attached to cached results; "
                             "docs/diagnostics.md)")


def _run_specs(specs, args, duration: float):
    """Run experiment specs honoring --jobs/--cached/--warm-start."""
    from repro.experiments.cache import fetch_or_run_many
    jobs = args.jobs if args.jobs > 0 else None
    return fetch_or_run_many(
        specs, sim_duration_ms=duration, sim_warmup_ms=duration / 10,
        run_simulation=not args.model_only, jobs=jobs,
        warm_start=args.warm_start, use_cache=args.cached,
        trace=getattr(args, "trace", False))


def _cmd_model(args) -> int:
    workload = STANDARD_WORKLOADS[args.workload](args.requests)
    solution = solve_model(workload, paper_sites(), max_iterations=1000)
    print(f"workload {workload.name}, n={args.requests} "
          f"(converged in {solution.iterations} iterations)")
    for name, site in sorted(solution.sites.items()):
        print(f"  node {name}: TR-XPUT={site.transaction_throughput_per_s:.3f}/s "
              f"Total-CPU={site.cpu_utilization:.3f} "
              f"Total-DIO={site.dio_rate_per_s:.1f}/s "
              f"records/s={site.record_throughput_per_s:.1f}")
    return 0


def _cmd_simulate(args) -> int:
    workload = STANDARD_WORKLOADS[args.workload](args.requests)
    tracer = None
    if args.trace:
        from repro.testbed.tracing import Tracer
        tracer = Tracer()
    measurement = simulate(
        workload, paper_sites(), seed=args.seed,
        warmup_ms=args.warmup_s * 1e3,
        duration_ms=args.duration_s * 1e3,
        tracer=tracer)
    print(f"workload {workload.name}, n={args.requests}, "
          f"seed={args.seed}")
    for name, site in sorted(measurement.sites.items()):
        aborts = sum(site.aborts_by_type.values())
        print(f"  node {name}: TR-XPUT={site.transaction_throughput_per_s:.3f}/s "
              f"Total-CPU={site.cpu_utilization:.3f} "
              f"Total-DIO={site.dio_rate_per_s:.1f}/s "
              f"aborts={aborts} "
              f"deadlocks={site.local_deadlocks}L+{site.global_deadlocks}G")
    if tracer is not None:
        _dump_trace(tracer, args)
    return 0


def _dump_trace(tracer, args) -> None:
    """Render the run's trace per the --trace-* flags."""
    events = tracer.events(site=args.trace_site)
    if args.trace_txn is not None:
        events = [e for e in events if args.trace_txn in e.txn]
    render = (tracer.to_jsonl if args.trace_format == "jsonl"
              else tracer.dump)
    if args.trace_file:
        with open(args.trace_file, "w", encoding="utf-8") as handle:
            handle.write(render(events) + "\n")
        print(f"trace: {tracer.recorded} events recorded "
              f"({tracer.dropped} dropped), {len(events)} matched, "
              f"wrote {args.trace_file}")
        return
    shown = events[-args.trace_limit:] if args.trace_limit > 0 else events
    print(f"trace: {tracer.recorded} events recorded "
          f"({tracer.dropped} dropped), {len(events)} matched, "
          f"showing {len(shown)}")
    if shown:
        print(render(shown))


def _cmd_compare(args) -> int:
    from repro.experiments.compare import (compare_workload,
                                           flagged_rows, render_json,
                                           render_table)
    report = compare_workload(
        args.workload, requests=args.requests, seed=args.seed,
        duration_ms=args.duration_s * 1e3,
        warmup_ms=args.warmup_s * 1e3, quick=args.quick)
    text = (render_json(report) if args.json
            else render_table(report, max_residual=args.max_residual))
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    if args.max_residual is not None \
            and flagged_rows(report, args.max_residual):
        return 1
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments.catalog import experiment_specs
    specs = experiment_specs(args.exp_id)
    duration = 120_000.0 if args.quick else 600_000.0
    results = _run_specs(specs, args, duration)
    for spec, result in zip(specs, results):
        if len(specs) > 1:
            print(f"== {spec.title} ({spec.exp_id}) ==")
        if spec.exp_id == "tab5":
            print(render_per_type_table(result))
        elif spec.exp_id.startswith("fig"):
            from repro.experiments.plots import figure_chart
            metric = {"fig5": "record_xput", "fig6": "cpu",
                      "fig7": "dio", "fig8": "record_xput",
                      "fig9": "cpu", "fig10": "dio"}[spec.exp_id]
            for site in spec.sites_of_interest:
                print(render_figure_series(result, site, metric, metric))
                print()
                print(figure_chart(result, site, metric,
                                   spec.title).text)
                print()
        else:
            print(render_summary_table(result, bounds=args.bounds))
        if args.trace:
            _print_trace_summaries(result)
    return 0


def _print_trace_summaries(result) -> None:
    """One convergence line per sweep point (--trace)."""
    print("model convergence:")
    seen = set()
    for point in result.points:
        if point.n in seen or not point.model_trace:
            continue
        seen.add(point.n)
        summary = point.model_trace["summary"]
        print(f"  n={point.n}: {summary['diagnosis']}")


def _cmd_diagnose(args) -> int:
    from repro.experiments.diagnose import diagnose_report, render_json
    report = diagnose_report(
        args.target, requests=args.requests, quick=args.quick,
        warm_start=args.warm_start)
    text = render_json(report, include_iterations=not args.summary_only)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    return 0 if all(p["summary"]["converged"]
                    for p in report["points"]) else 1


def _cmd_perf(args) -> int:
    from repro.experiments.perf import main as perf_main
    argv = ["--baseline-dir", args.baseline_dir,
            "--tolerance", str(args.tolerance)]
    if args.output_dir:
        argv += ["--output-dir", args.output_dir]
    if args.check:
        argv.append("--check")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.time_tolerance is not None:
        argv += ["--time-tolerance", str(args.time_tolerance)]
    return perf_main(argv)


def _cmd_report(args) -> int:
    from repro.experiments.emit import main as emit_main
    argv = ["--output", args.output, "--jobs", str(args.jobs)]
    if args.quick:
        argv.append("--quick")
    return emit_main(argv)


def _cmd_calibrate(args) -> int:
    from repro.model.calibration import calibrate_protocol
    result = calibrate_protocol(max_evaluations=args.evaluations)
    print(f"objective {result.objective:.4f} after "
          f"{result.iterations} model solves")
    protocol = result.protocol
    print(f"  tbegin_cpu          = {protocol.tbegin_cpu:.1f} ms")
    print(f"  dbopen_cpu_per_site = {protocol.dbopen_cpu_per_site:.1f} ms")
    print(f"  commit_cpu          = {protocol.commit_cpu:.1f} ms")
    for site, (xput_r, cpu_r, dio_r) in result.residuals.items():
        print(f"  node {site}: XPUT {100 * xput_r:+.1f}%  "
              f"CPU {100 * cpu_r:+.1f}%  DIO {100 * dio_r:+.1f}%")
    return 0


def _cmd_export(args) -> int:
    from repro.experiments.export import experiment_to_csv
    spec = experiment(args.exp_id)
    duration = 120_000.0 if args.quick else 600_000.0
    result = _run_specs([spec], args, duration)[0]
    text = experiment_to_csv(result, per_type=args.exp_id == "tab5")
    if args.output == "-":
        print(text, end="")
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.experiments.sensitivity import (elasticity,
                                               sweep_site_field)
    workload = STANDARD_WORKLOADS[args.workload](args.requests)
    sites = paper_sites()
    values = args.values
    if values is None:
        baseline = getattr(sites["A"], args.field)
        values = [0.7 * baseline, float(baseline), 1.5 * baseline]
    result = sweep_site_field(workload, sites, args.field, values)
    print(f"sensitivity of {workload.name} (n={args.requests}) to "
          f"site.{args.field}:")
    for point in result.points:
        xput = ", ".join(f"{s}={x:.3f}"
                         for s, x in sorted(
                             point.throughput_per_s.items()))
        print(f"  {args.field}={point.value:g}: XPUT {xput}")
    print(f"  elasticity (node A): {elasticity(result, 'A'):+.3f}")
    return 0


def _parse_whatif(values: list[str] | None):
    """Translate ``--whatif`` tokens into candidates."""
    from repro.planner import WhatIfCandidate, standard_candidates
    if not values:
        return ()
    kinds = {"cpu": "cpu_speed", "disk": "disk_speed",
             "granules": "granules", "log-split": "log_split",
             "log_split": "log_split"}
    candidates = []
    for token in values:
        if token == "standard":
            candidates.extend(standard_candidates())
            continue
        name, _, factor = token.partition("=")
        if name not in kinds:
            raise SystemExit(
                f"unknown --whatif {token!r}; expected one of "
                f"{sorted(kinds)} or 'standard'")
        candidates.append(WhatIfCandidate(
            kind=kinds[name], factor=float(factor) if factor else 2.0))
    return tuple(candidates)


def _cmd_plan(args) -> int:
    from repro.planner import (PlanSpec, SloSpec, plan,
                               render_plan_json, render_plan_text)
    workload = STANDARD_WORKLOADS[args.workload](args.requests)
    spec = PlanSpec(
        workload=workload,
        mpl_max=args.mpl_max,
        slo=SloSpec(
            response_ms=(None if args.slo_response is None
                         else args.slo_response * 1e3),
            abort_probability=args.slo_abort),
        whatif=_parse_whatif(args.whatif),
        tolerance=args.tolerance,
        max_iterations=args.max_iterations,
    )
    result = plan(spec, jobs=args.jobs if args.jobs > 0 else None,
                  use_cache=args.cached)
    text = (render_plan_json(result) if args.json
            else render_plan_text(result))
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    return 0


def _run_stats_targets(args) -> None:
    """Dispatch the ``stats`` targets under the active registry."""
    from repro.experiments.catalog import experiment_specs
    exp_ids = [t for t in args.targets if t in EXPERIMENTS]
    if exp_ids:
        specs = experiment_specs(exp_ids)
        duration = 120_000.0 if args.quick else 600_000.0
        _run_specs(specs, args, duration)
    if "plan" in args.targets:
        from repro.planner import PlanSpec, plan, standard_candidates
        workload = STANDARD_WORKLOADS[args.workload](args.requests)
        spec = PlanSpec(workload=workload, mpl_max=args.mpl_max,
                        whatif=standard_candidates())
        plan(spec, jobs=args.jobs if args.jobs > 0 else None,
             use_cache=args.cached)
    if "perf" in args.targets:
        from repro.experiments.perf import run_suite
        run_suite(("tab3",))


def _cmd_stats(args) -> int:
    from repro.model.diagnostics import trace_clock
    from repro.obs import MetricsRegistry, recording, span
    from repro.obs.export import to_chrome_trace, to_prometheus
    from repro.obs.report import render_stats_report

    registry = MetricsRegistry()
    clock = trace_clock()
    start = clock()
    with recording(registry), \
            span("stats.run", targets=" ".join(args.targets),
                 jobs=args.jobs):
        _run_stats_targets(args)
    wall_ms = (clock() - start) * 1e3
    print(render_stats_report(registry, wall_ms))
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            handle.write(to_chrome_trace(registry) + "\n")
        print(f"wrote {args.trace_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(to_prometheus(registry))
        print(f"wrote {args.metrics_out}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.cli import main as lint_main
    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.output:
        argv += ["--output", args.output]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def _cmd_list(_args) -> int:
    from repro.planner.report import render_workload_bounds
    from repro.scenarios.generator import standard_families
    from repro.scenarios.spec import BUILTIN_NAMES
    print("experiments:")
    for exp_id, spec in sorted(EXPERIMENTS.items()):
        print(f"  {exp_id:>6}  {spec.title}")
    print("workloads:", ", ".join(sorted(STANDARD_WORKLOADS)))
    print("scenario specs:",
          ", ".join(name.lower() for name in BUILTIN_NAMES))
    print("scenario families "
          "(repro scenario sample --family NAME):")
    for name, fam in sorted(standard_families().items()):
        print(f"  {name:<14} {fam.description}")
    print(render_workload_bounds())
    return 0


def _cmd_scenario(args) -> int:
    from repro.scenarios.cli import cmd_scenario
    return cmd_scenario(args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "model": _cmd_model,
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
        "diagnose": _cmd_diagnose,
        "perf": _cmd_perf,
        "report": _cmd_report,
        "calibrate": _cmd_calibrate,
        "sensitivity": _cmd_sensitivity,
        "export": _cmd_export,
        "plan": _cmd_plan,
        "stats": _cmd_stats,
        "lint": _cmd_lint,
        "list": _cmd_list,
        "scenario": _cmd_scenario,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
